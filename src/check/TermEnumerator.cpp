//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/TermEnumerator.h"

#include "ast/AlgebraContext.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <string>

using namespace algspec;

TermEnumerator::TermEnumerator(AlgebraContext &Ctx, EnumeratorOptions Options)
    : Ctx(Ctx), Options(std::move(Options)) {}

const std::vector<TermId> &TermEnumerator::enumerate(SortId Sort,
                                                     unsigned MaxDepth) {
  uint64_t K = key(Sort, MaxDepth);
  auto It = Cache.find(K);
  if (It != Cache.end()) {
    CacheEntry &Entry = It->second;
    if (Entry.Gen == Ctx.generation() ||
        Entry.FillMark <= Ctx.truncateLowWater())
      return Entry.Terms;
    // A truncation freed terms this entry references; rebuild it.
    Truncated.erase(K);
    Cache.erase(It);
  }

  std::vector<TermId> Result;
  bool DidTruncate = false;
  const SortInfo &Info = Ctx.sort(Sort);

  switch (Info.Kind) {
  case SortKind::Atom: {
    // Atom leaves exist at every depth >= 1. Atoms are named after the
    // sort so terms stay readable in reports: 'identifier1, 'identifier2.
    if (MaxDepth >= 1) {
      std::string Base(Ctx.sortName(Sort));
      for (char &C : Base)
        C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
      for (unsigned I = 1; I <= Options.AtomUniverse; ++I)
        Result.push_back(Ctx.makeAtom(Base + std::to_string(I), Sort));
    }
    break;
  }
  case SortKind::Int: {
    if (MaxDepth >= 1)
      for (int64_t Value : Options.IntValues)
        Result.push_back(Ctx.makeInt(Value));
    break;
  }
  case SortKind::Bool:
  case SortKind::User: {
    if (MaxDepth == 0)
      break;
    for (OpId Ctor : Ctx.constructorsOf(Sort)) {
      const OpInfo &CtorInfo = Ctx.op(Ctor);
      if (CtorInfo.arity() == 0) {
        Result.push_back(Ctx.makeOp(Ctor, {}));
        continue;
      }
      if (MaxDepth == 1)
        continue; // Children need at least depth 1.

      // Cartesian product of child enumerations at depth - 1.
      std::vector<const std::vector<TermId> *> ChildSets;
      bool Empty = false;
      for (SortId ArgSort : CtorInfo.ArgSorts) {
        const std::vector<TermId> &Set = enumerate(ArgSort, MaxDepth - 1);
        if (Set.empty())
          Empty = true;
        ChildSets.push_back(&Set);
      }
      if (Empty)
        continue;

      std::vector<size_t> Index(ChildSets.size(), 0);
      std::vector<TermId> Args(ChildSets.size());
      while (true) {
        for (size_t I = 0; I != ChildSets.size(); ++I)
          Args[I] = (*ChildSets[I])[Index[I]];
        Result.push_back(Ctx.makeOp(Ctor, Args));
        if (Result.size() >= Options.MaxTermsPerSort) {
          DidTruncate = true;
          break;
        }
        // Odometer increment.
        size_t Pos = 0;
        while (Pos != Index.size()) {
          if (++Index[Pos] < ChildSets[Pos]->size())
            break;
          Index[Pos] = 0;
          ++Pos;
        }
        if (Pos == Index.size())
          break;
      }
      if (DidTruncate)
        break;
    }
    break;
  }
  }

  Truncated[K] = DidTruncate;
  CacheEntry Entry;
  Entry.Terms = std::move(Result);
  Entry.FillMark = Ctx.numTerms();
  Entry.Gen = Ctx.generation();
  FillHighWater = std::max(FillHighWater, Entry.FillMark);
  return Cache.emplace(K, std::move(Entry)).first->second.Terms;
}

void TermEnumerator::onTruncated() {
  const uint32_t Live = Ctx.numTerms();
  const uint64_t Gen = Ctx.generation();
  FillHighWater = 0;
  for (auto It = Cache.begin(); It != Cache.end();) {
    if (It->second.FillMark <= Live) {
      // Suffix truncation: every id below the live count survived.
      It->second.Gen = Gen;
      FillHighWater = std::max(FillHighWater, It->second.FillMark);
      ++It;
    } else {
      Truncated.erase(It->first);
      It = Cache.erase(It);
    }
  }
}

bool TermEnumerator::wasTruncated(SortId Sort, unsigned MaxDepth) const {
  auto It = Truncated.find(key(Sort, MaxDepth));
  return It != Truncated.end() && It->second;
}

TermId TermEnumerator::sample(SortId Sort, unsigned MaxDepth,
                              std::mt19937_64 &Rng) {
  const std::vector<TermId> &All = enumerate(Sort, MaxDepth);
  if (All.empty())
    return TermId();
  std::uniform_int_distribution<size_t> Dist(0, All.size() - 1);
  return All[Dist(Rng)];
}
