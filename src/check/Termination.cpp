//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Termination.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace algspec;

namespace {

/// Appends every operation applied anywhere inside \p Term to \p Order in
/// first-visit (pre-order) order. Deterministic ordering keeps component
/// numbering, cycle reports, and the rendered precedence stable across runs.
void collectOps(const AlgebraContext &Ctx, TermId Term,
                std::vector<OpId> &Order, std::unordered_set<OpId> &Seen) {
  const TermNode &N = Ctx.node(Term);
  if (N.Kind == TermKind::Op && Seen.insert(N.Op).second)
    Order.push_back(N.Op);
  for (TermId Child : Ctx.children(Term))
    collectOps(Ctx, Child, Order, Seen);
}

/// Tarjan's strongly-connected-components algorithm. Components come out
/// sinks-first: every component an edge leaves into is emitted before the
/// component the edge leaves from, so a single forward sweep computes
/// longest-path ranks.
class TarjanScc {
public:
  explicit TarjanScc(const std::vector<std::vector<unsigned>> &Adj)
      : ComponentOf(Adj.size(), 0), Adj(Adj), Index(Adj.size(), Unvisited),
        Low(Adj.size(), 0), OnStack(Adj.size(), false) {
    for (unsigned N = 0; N < Adj.size(); ++N)
      if (Index[N] == Unvisited)
        visit(N);
  }

  std::vector<std::vector<unsigned>> Components;
  std::vector<unsigned> ComponentOf;

private:
  static constexpr unsigned Unvisited = ~0u;

  void visit(unsigned N) {
    Index[N] = Low[N] = Next++;
    Stack.push_back(N);
    OnStack[N] = true;
    for (unsigned M : Adj[N]) {
      if (Index[M] == Unvisited) {
        visit(M);
        Low[N] = std::min(Low[N], Low[M]);
      } else if (OnStack[M]) {
        Low[N] = std::min(Low[N], Index[M]);
      }
    }
    if (Low[N] != Index[N])
      return;
    std::vector<unsigned> Component;
    unsigned M;
    do {
      M = Stack.back();
      Stack.pop_back();
      OnStack[M] = false;
      ComponentOf[M] = static_cast<unsigned>(Components.size());
      Component.push_back(M);
    } while (M != N);
    Components.push_back(std::move(Component));
  }

  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<unsigned> Index;
  std::vector<unsigned> Low;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  unsigned Next = 0;
};

/// The recursive path ordering with lexicographic status over a rank-based
/// operation precedence. Hash-consing makes structural equality a TermId
/// compare, so the lexicographic step and the memo table are cheap.
class Rpo {
public:
  Rpo(const AlgebraContext &Ctx,
      const std::unordered_map<OpId, unsigned> &OpRank)
      : Ctx(Ctx), OpRank(OpRank) {}

  /// True when S >rpo T.
  bool greater(TermId S, TermId T) {
    if (S == T)
      return false;
    const TermNode &SN = Ctx.node(S);
    // A variable dominates nothing but itself.
    if (SN.Kind == TermKind::Var)
      return false;
    const TermNode &TN = Ctx.node(T);
    // S > x iff x occurs in S.
    if (TN.Kind == TermKind::Var)
      return occurs(S, TN.Var);
    uint64_t Key = (static_cast<uint64_t>(S.index()) << 32) | T.index();
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    bool Result = compute(S, SN, T, TN);
    Memo.emplace(Key, Result);
    return Result;
  }

private:
  /// Head-symbol precedence: operations sit at 2 + dependency rank, atom
  /// and integer literals below every operation, error below everything.
  /// With literals as minimal constants, "f(...) > 'x" and "anything
  /// non-error > error" fall out of the ordinary precedence case.
  int prec(const TermNode &N) const {
    switch (N.Kind) {
    case TermKind::Op: {
      auto It = OpRank.find(N.Op);
      return 2 + static_cast<int>(It == OpRank.end() ? 0u : It->second);
    }
    case TermKind::Atom:
    case TermKind::Int:
      return 1;
    case TermKind::Error:
      return 0;
    case TermKind::Var:
      break; // Handled before prec() is consulted.
    }
    return -1;
  }

  bool occurs(TermId Haystack, VarId V) const {
    const TermNode &N = Ctx.node(Haystack);
    if (N.Kind == TermKind::Var)
      return N.Var == V;
    for (TermId Child : Ctx.children(Haystack))
      if (occurs(Child, V))
        return true;
    return false;
  }

  bool compute(TermId S, const TermNode &SN, TermId T, const TermNode &TN) {
    // Subterm case: some immediate subterm of S equals or dominates T.
    if (SN.Kind == TermKind::Op)
      for (TermId Si : Ctx.children(S))
        if (Si == T || greater(Si, T))
          return true;

    // Equal heads: compare arguments lexicographically; S must also
    // dominate every argument of T.
    if (SN.Kind == TermKind::Op && TN.Kind == TermKind::Op && SN.Op == TN.Op) {
      std::span<const TermId> SC = Ctx.children(S);
      std::span<const TermId> TC = Ctx.children(T);
      size_t K = 0;
      while (K < SC.size() && SC[K] == TC[K])
        ++K;
      if (K == SC.size() || !greater(SC[K], TC[K]))
        return false;
      for (TermId Tj : TC)
        if (!greater(S, Tj))
          return false;
      return true;
    }

    // Precedence case: S's head stands strictly above T's head, and S
    // dominates every argument of T.
    if (prec(SN) > prec(TN)) {
      if (TN.Kind == TermKind::Op)
        for (TermId Tj : Ctx.children(T))
          if (!greater(S, Tj))
            return false;
      return true;
    }
    return false;
  }

  const AlgebraContext &Ctx;
  const std::unordered_map<OpId, unsigned> &OpRank;
  std::unordered_map<uint64_t, bool> Memo;
};

/// Descends from \p Rhs into the first failing child until every child of
/// the current subterm is dominated; that innermost failing subterm names
/// the real obstruction rather than the whole right-hand side.
TermId findWitness(const AlgebraContext &Ctx, Rpo &Order, TermId Lhs,
                   TermId Rhs) {
  TermId Cur = Rhs;
  for (;;) {
    if (Ctx.node(Cur).Kind != TermKind::Op)
      return Cur;
    TermId Next;
    for (TermId Child : Ctx.children(Cur))
      if (Child == Lhs || !Order.greater(Lhs, Child)) {
        Next = Child;
        break;
      }
    if (!Next.isValid())
      return Cur;
    Cur = Next;
  }
}

std::string joinOpNames(const AlgebraContext &Ctx,
                        const std::vector<OpId> &Ops,
                        std::string_view Separator) {
  std::string Out;
  for (size_t I = 0; I < Ops.size(); ++I) {
    if (I != 0)
      Out += Separator;
    Out.append(Ctx.opName(Ops[I]));
  }
  return Out;
}

} // namespace

bool TerminationReport::provedFor(std::string_view SpecName) const {
  for (const SpecTermination &ST : PerSpec)
    if (ST.SpecName == SpecName)
      return ST.Proved;
  return false;
}

std::string TerminationReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  for (const SpecTermination &ST : PerSpec) {
    Out += "termination of '" + ST.SpecName + "': ";
    Out += ST.Proved ? "proved (recursive path ordering: every axiom "
                       "strictly decreases)\n"
                     : "not proved (runtime fuel bound still applies)\n";
  }
  for (const TerminationFailure &F : Failures)
    Out += "  axiom (" + std::to_string(F.AxiomNumber) + ") of '" +
           F.SpecName + "': " + F.Reason + "\n";
  for (const std::vector<OpId> &Cycle : Cycles)
    Out += "  mutual recursion: " + joinOpNames(Ctx, Cycle, " <-> ") + "\n";
  return Out;
}

TerminationReport
algspec::proveTermination(AlgebraContext &Ctx,
                          const std::vector<const Spec *> &Specs) {
  TerminationReport Report;

  // 1. The defined-operation dependency graph: a node per operation the
  // axioms mention, an edge from each axiom's head to every operation its
  // right-hand side applies.
  std::vector<OpId> Nodes;
  std::unordered_set<OpId> Seen;
  for (const Spec *S : Specs)
    for (const Axiom &Ax : S->axioms()) {
      collectOps(Ctx, Ax.Lhs, Nodes, Seen);
      collectOps(Ctx, Ax.Rhs, Nodes, Seen);
    }
  std::unordered_map<OpId, unsigned> NodeOf;
  for (unsigned N = 0; N < Nodes.size(); ++N)
    NodeOf.emplace(Nodes[N], N);

  std::vector<std::vector<unsigned>> Adj(Nodes.size());
  for (const Spec *S : Specs)
    for (const Axiom &Ax : S->axioms()) {
      const TermNode &L = Ctx.node(Ax.Lhs);
      if (L.Kind != TermKind::Op)
        continue;
      unsigned Head = NodeOf[L.Op];
      std::vector<OpId> RhsOps;
      std::unordered_set<OpId> RhsSeen;
      collectOps(Ctx, Ax.Rhs, RhsOps, RhsSeen);
      for (OpId Op : RhsOps) {
        unsigned Target = NodeOf[Op];
        if (std::find(Adj[Head].begin(), Adj[Head].end(), Target) ==
            Adj[Head].end())
          Adj[Head].push_back(Target);
      }
    }

  // 2. Precedence synthesis. Collapse strongly connected components; a
  // nontrivial component is mutual recursion, which no strict precedence
  // can linearize — report it and fail its axioms. Self-loops (direct
  // structural recursion) are fine: the lexicographic case handles them.
  TarjanScc Scc(Adj);
  std::unordered_set<OpId> Cyclic;
  for (const std::vector<unsigned> &Component : Scc.Components) {
    if (Component.size() < 2)
      continue;
    std::vector<OpId> Cycle;
    for (unsigned N : Component) {
      Cycle.push_back(Nodes[N]);
      Cyclic.insert(Nodes[N]);
    }
    std::sort(Cycle.begin(), Cycle.end(), [&](OpId A, OpId B) {
      return Ctx.opName(A) < Ctx.opName(B);
    });
    Report.Cycles.push_back(std::move(Cycle));
  }

  // Longest-path rank over the component DAG; any linearization of the
  // dependency order is a valid precedence, and longest-path keeps every
  // caller strictly above everything it calls.
  std::vector<unsigned> ComponentRank(Scc.Components.size(), 0);
  for (unsigned C = 0; C < Scc.Components.size(); ++C)
    for (unsigned N : Scc.Components[C])
      for (unsigned M : Adj[N]) {
        unsigned MC = Scc.ComponentOf[M];
        if (MC != C)
          ComponentRank[C] = std::max(ComponentRank[C], ComponentRank[MC] + 1);
      }

  std::unordered_map<OpId, unsigned> OpRank;
  for (unsigned N = 0; N < Nodes.size(); ++N)
    OpRank.emplace(Nodes[N], ComponentRank[Scc.ComponentOf[N]]);

  Report.Precedence = Nodes;
  std::sort(Report.Precedence.begin(), Report.Precedence.end(),
            [&](OpId A, OpId B) {
              unsigned RA = OpRank.at(A), RB = OpRank.at(B);
              if (RA != RB)
                return RA > RB;
              return Ctx.opName(A) < Ctx.opName(B);
            });

  // 3. Orient every axiom: LHS >rpo RHS.
  Rpo Order(Ctx, OpRank);
  for (const Spec *S : Specs) {
    bool SpecOk = true;
    for (const Axiom &Ax : S->axioms()) {
      const TermNode &L = Ctx.node(Ax.Lhs);
      std::string Reason;
      if (L.Kind != TermKind::Op) {
        Reason = "left-hand side is not an operation application, so the "
                 "axiom is not an orientable rewrite rule";
      } else if (Cyclic.count(L.Op) != 0) {
        for (const std::vector<OpId> &Cycle : Report.Cycles)
          if (std::find(Cycle.begin(), Cycle.end(), L.Op) != Cycle.end()) {
            Reason = "operations " + joinOpNames(Ctx, Cycle, ", ") +
                     " are mutually recursive; no strict operation "
                     "precedence orients their axioms (each would need to "
                     "stand above the other in the recursive path ordering)";
            break;
          }
      } else if (!Order.greater(Ax.Lhs, Ax.Rhs)) {
        TermId Witness = findWitness(Ctx, Order, Ax.Lhs, Ax.Rhs);
        Reason = "left-hand side '" + printTerm(Ctx, Ax.Lhs) +
                 "' does not dominate right-hand-side subterm '" +
                 printTerm(Ctx, Witness) + "' in the recursive path ordering";
        const TermNode &WN = Ctx.node(Witness);
        if (WN.Kind == TermKind::Op && WN.Op == L.Op)
          Reason += " (the recursive call is not applied to structurally "
                    "smaller arguments)";
      }
      if (!Reason.empty()) {
        SpecOk = false;
        Report.Failures.emplace_back(S->name(), Ax.Number, Ax.Loc,
                                     std::move(Reason));
      }
    }
    Report.PerSpec.emplace_back(S->name(), SpecOk);
  }
  Report.AllProved = Report.Failures.empty();
  return Report;
}

TerminationReport algspec::proveTermination(AlgebraContext &Ctx,
                                            const Spec &S) {
  std::vector<const Spec *> Specs{&S};
  return proveTermination(Ctx, Specs);
}
