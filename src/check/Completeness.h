//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sufficient-completeness checking (paper, section 3).
///
/// An axiom set is *sufficiently complete* when every defined operation
/// applied to ground constructor arguments has a meaning. The paper
/// describes "a system to mechanically 'verify' the sufficient-
/// completeness" that "prompts the user to supply the additional
/// information" — the missing cases. This module is that system:
///
///  - The **static** check treats each defined operation's axiom
///    left-hand sides as a pattern matrix and decides constructor-case
///    coverage (in the style of pattern-match usefulness checking). Every
///    uncovered case is reported as a concrete left-hand side the user
///    should write an axiom for, e.g. `REMOVE(NEW) = ?` — exactly the
///    boundary condition the paper says people forget.
///
///  - The **dynamic** check enumerates ground applications up to a depth
///    bound, normalizes them, and reports stuck terms. It catches what
///    the static analysis cannot see (e.g. right-hand sides that lead
///    into uncovered cases of *other* operations, or guards that never
///    decide), at the price of being bounded.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_COMPLETENESS_H
#define ALGSPEC_CHECK_COMPLETENESS_H

#include "ast/Ids.h"
#include "check/TermEnumerator.h"
#include "rewrite/Engine.h"
#include "support/Parallel.h"

#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;
struct ExhaustivenessReport;

/// One uncovered case: the suggested left-hand side contains fresh
/// variables for the parts the axioms may bind freely.
struct MissingCase {
  OpId Op;
  TermId SuggestedLhs;
};

/// Outcome of a completeness check.
struct CompletenessReport {
  bool SufficientlyComplete = true;
  std::vector<MissingCase> Missing;
  /// Conditions that make the verdict approximate (non-constructor
  /// patterns, enumerator truncation, uninhabited sorts).
  std::vector<std::string> Caveats;
  /// Rewrite-engine counters for the dynamic check, aggregated over the
  /// main engine and every worker replica. Not part of the verdict and
  /// not deterministic across worker counts (memo behaviour depends on
  /// how the sweep is chunked); the static check leaves them zero.
  EngineStats Engine;
  /// Non-empty when the dynamic ground sweep was skipped because a
  /// static exhaustiveness certificate already proves the verdict;
  /// names the proof. The sweep's counters stay zero in that case.
  std::string ProvenBy;

  /// Renders the paper-style prompt: one "please supply an axiom for ..."
  /// line per missing case.
  std::string renderPrompt(const AlgebraContext &Ctx) const;
};

/// Static pattern-coverage check over every defined operation of \p S.
CompletenessReport checkCompleteness(AlgebraContext &Ctx, const Spec &S);

/// Dynamic bounded check: normalizes every ground application of each
/// defined operation of \p S (arguments enumerated up to \p MaxDepth)
/// against the rules of \p AllSpecs (which must include \p S) and reports
/// the stuck ones. \p AllSpecs exists because a spec may rely on
/// operations of other specs (Stack of Arrays).
///
/// With \p Par asking for more than one job, the enumerated application
/// space is sharded across a worker pool; each worker normalizes its
/// share against a private re-elaboration of the specs, and findings are
/// merged in enumeration order, so the report is byte-identical to the
/// serial sweep at any job count.
///
/// \p Eng configures the rewrite engines (main and worker replicas) —
/// notably EngineOptions::Compile, the compiled-vs-interpreted knob.
///
/// With a \p Certificate whose verdict covers \p S (see
/// check/Exhaustiveness.h), the ground sweep is skipped outright: the
/// certificate proves what the sweep could only fail to refute, and the
/// report says so in \c ProvenBy. Findings are byte-identical to the
/// unskipped sweep (both are empty); the sweep-specific truncation and
/// nullary caveats and engine counters are naturally absent.
CompletenessReport
checkCompletenessDynamic(AlgebraContext &Ctx, const Spec &S,
                         const std::vector<const Spec *> &AllSpecs,
                         unsigned MaxDepth,
                         EnumeratorOptions EnumOptions = EnumeratorOptions(),
                         ParallelOptions Par = ParallelOptions(),
                         EngineOptions Eng = EngineOptions(),
                         const ExhaustivenessReport *Certificate = nullptr);

} // namespace algspec

#endif // ALGSPEC_CHECK_COMPLETENESS_H
