//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Consistency.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Unify.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"

#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace algspec;

std::string ConsistencyReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  if (Consistent)
    Out += "No contradictions found.\n";
  for (const Contradiction &C : Contradictions) {
    Out += "axioms " + std::to_string(C.AxiomA) + " of '" + C.SpecA +
           "' and " + std::to_string(C.AxiomB) + " of '" + C.SpecB +
           "' disagree on " + printTerm(Ctx, C.Overlap) + ": " +
           printTerm(Ctx, C.ResultA) + " vs " + printTerm(Ctx, C.ResultB) +
           "\n";
  }
  for (const std::string &Caveat : Caveats) {
    Out += "note: ";
    Out += Caveat;
    Out += '\n';
  }
  return Out;
}

/// Collects the free variables of \p Term in first-occurrence order.
static void collectVarsOrdered(const AlgebraContext &Ctx, TermId Term,
                               std::vector<VarId> &Vars,
                               std::unordered_set<VarId> &Seen) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (Seen.insert(Node.Var).second)
      Vars.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVarsOrdered(Ctx, Child, Vars, Seen);
}


/// Collects every position (path of child indices) in \p Term whose
/// subterm is an operation application — the candidate redex positions
/// for critical-pair overlap.
static void collectOpPositions(const AlgebraContext &Ctx, TermId Term,
                               std::vector<uint32_t> &Path,
                               std::vector<std::vector<uint32_t>> &Out) {
  if (Ctx.node(Term).Kind != TermKind::Op)
    return;
  Out.push_back(Path);
  auto Children = Ctx.children(Term);
  for (uint32_t I = 0; I != Children.size(); ++I) {
    Path.push_back(I);
    collectOpPositions(Ctx, Children[I], Path, Out);
    Path.pop_back();
  }
}

static std::vector<std::vector<uint32_t>>
nonVariablePositions(const AlgebraContext &Ctx, TermId Term) {
  std::vector<uint32_t> Path;
  std::vector<std::vector<uint32_t>> Out;
  collectOpPositions(Ctx, Term, Path, Out);
  return Out;
}

/// The subterm of \p Term at \p Pos.
static TermId subtermAt(const AlgebraContext &Ctx, TermId Term,
                        const std::vector<uint32_t> &Pos) {
  for (uint32_t Step : Pos)
    Term = Ctx.children(Term)[Step];
  return Term;
}

/// Returns \p Term with the subterm at \p Pos replaced by \p Repl.
static TermId replaceAt(AlgebraContext &Ctx, TermId Term,
                        const std::vector<uint32_t> &Pos, TermId Repl,
                        size_t Depth = 0) {
  if (Depth == Pos.size())
    return Repl;
  // Copy the children out: rebuilding below creates terms, which may
  // reallocate the child pool under a live span.
  auto Span = Ctx.children(Term);
  std::vector<TermId> Children(Span.begin(), Span.end());
  Children[Pos[Depth]] =
      replaceAt(Ctx, Children[Pos[Depth]], Pos, Repl, Depth + 1);
  return Ctx.makeOp(Ctx.node(Term).Op, Children);
}

ConsistencyReport
algspec::checkConsistency(AlgebraContext &Ctx,
                          const std::vector<const Spec *> &Specs,
                          unsigned GroundDepth,
                          EnumeratorOptions EnumOptions) {
  ConsistencyReport Report;

  DiagnosticEngine Diags;
  RewriteSystem System = RewriteSystem::build(Ctx, Specs, Diags);
  if (Diags.hasErrors())
    Report.Caveats.push_back(
        "some axioms could not be oriented into rules and were skipped");
  RewriteEngine Engine(Ctx, System);
  TermEnumerator Enumerator(Ctx, std::move(EnumOptions));

  const std::vector<Rule> &Rules = System.rules();

  auto normalizeOrCaveat = [&](TermId Term) -> TermId {
    Result<TermId> Normal = Engine.normalize(Term);
    if (Normal)
      return *Normal;
    Report.Caveats.push_back("normalization failed during the check: " +
                             Normal.error().message());
    return TermId();
  };

  // Deduplicate findings: one report per distinct (overlap, results).
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> Seen;
  auto report = [&](const Rule &RuleA, const Rule &RuleB, TermId Overlap,
                    TermId NormA, TermId NormB) {
    if (!Seen.insert({Overlap.index(), NormA.index(), NormB.index()})
             .second)
      return;
    Report.Consistent = false;
    Report.Contradictions.emplace_back(
        RuleA.SpecName, RuleB.SpecName, RuleA.AxiomNumber,
        RuleB.AxiomNumber, Overlap, NormA, NormB);
  };

  // Full Knuth-Bendix critical pairs: for every rule A, every non-variable
  // position p of A's left-hand side, and every rule B (renamed apart)
  // whose left-hand side unifies with A.Lhs|p, the peak sigma(A.Lhs) can
  // rewrite two ways: by A at the root, or by B at p. Both results must
  // join; a non-joinable pair is a contradiction between the two axioms.
  for (size_t AI = 0; AI != Rules.size(); ++AI) {
    const Rule &RuleA = Rules[AI];
    std::vector<std::vector<uint32_t>> Positions =
        nonVariablePositions(Ctx, RuleA.Lhs);
    for (size_t BI = 0; BI != Rules.size(); ++BI) {
      const Rule &RuleB = Rules[BI];
      auto [LhsB, RhsB] = renameRuleApart(Ctx, RuleB.Lhs, RuleB.Rhs);

      for (const std::vector<uint32_t> &Pos : Positions) {
        bool Root = Pos.empty();
        // Root overlaps are symmetric: visit each unordered pair once.
        // A rule trivially overlaps itself at the root; skip that too.
        if (Root && BI <= AI)
          continue;
        TermId Sub = subtermAt(Ctx, RuleA.Lhs, Pos);
        if (Ctx.node(Sub).Op != RuleB.HeadOp)
          continue;
        std::optional<Substitution> Mgu = unifyTerms(Ctx, Sub, LhsB);
        if (!Mgu)
          continue;

        TermId Overlap = applySubstitution(Ctx, RuleA.Lhs, *Mgu);
        TermId InstA = applySubstitution(Ctx, RuleA.Rhs, *Mgu);
        TermId InstB = applySubstitution(
            Ctx, replaceAt(Ctx, RuleA.Lhs, Pos, RhsB), *Mgu);

        // Critical pair: both peak reducts must join.
        TermId NormA = normalizeOrCaveat(InstA);
        TermId NormB = normalizeOrCaveat(InstB);
        if (NormA.isValid() && NormB.isValid() && NormA != NormB) {
          report(RuleA, RuleB, Overlap, NormA, NormB);
          continue;
        }
        if (GroundDepth == 0)
          continue;

        // Ground pass: instantiate the peak's remaining variables with
        // enumerated values; divergence may only appear on concrete
        // atoms (e.g. a SAME guard deciding differently per rule).
        std::vector<VarId> FreeVars;
        std::unordered_set<VarId> SeenVars;
        collectVarsOrdered(Ctx, Overlap, FreeVars, SeenVars);
        collectVarsOrdered(Ctx, InstA, FreeVars, SeenVars);
        collectVarsOrdered(Ctx, InstB, FreeVars, SeenVars);
        if (FreeVars.empty())
          continue;

        std::vector<const std::vector<TermId> *> Values;
        bool Empty = false;
        for (VarId Var : FreeVars) {
          const std::vector<TermId> &Set =
              Enumerator.enumerate(Ctx.var(Var).Sort, GroundDepth);
          if (Set.empty())
            Empty = true;
          Values.push_back(&Set);
        }
        if (Empty)
          continue;

        constexpr size_t MaxGroundInstances = 512;
        size_t Count = 0;
        std::vector<size_t> Index(FreeVars.size(), 0);
        bool FoundHere = false;
        while (!FoundHere && Count < MaxGroundInstances) {
          Substitution Ground;
          for (size_t I = 0; I != FreeVars.size(); ++I)
            Ground.bind(FreeVars[I], (*Values[I])[Index[I]]);
          TermId GroundA =
              normalizeOrCaveat(applySubstitution(Ctx, InstA, Ground));
          TermId GroundB =
              normalizeOrCaveat(applySubstitution(Ctx, InstB, Ground));
          if (GroundA.isValid() && GroundB.isValid() &&
              GroundA != GroundB) {
            report(RuleA, RuleB,
                   applySubstitution(Ctx, Overlap, Ground), GroundA,
                   GroundB);
            FoundHere = true;
          }
          ++Count;
          size_t P = 0;
          while (P != Index.size()) {
            if (++Index[P] < Values[P]->size())
              break;
            Index[P] = 0;
            ++P;
          }
          if (P == Index.size())
            break;
        }
      }
    }
  }
  return Report;
}
