//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Consistency.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Convergence.h"
#include "check/ReplicaWorker.h"
#include "check/Unify.h"
#include "egraph/EqSat.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"

#include <limits>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace algspec;

std::string ConsistencyReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  if (Consistent && !ProvenBy.empty())
    Out += "proven consistent: " + ProvenBy + "\n";
  else if (Consistent)
    Out += "No contradictions found.\n";
  for (const Contradiction &C : Contradictions) {
    Out += "axioms " + std::to_string(C.AxiomA) + " of '" + C.SpecA +
           "' and " + std::to_string(C.AxiomB) + " of '" + C.SpecB +
           "' disagree on " + printTerm(Ctx, C.Overlap) + ": " +
           printTerm(Ctx, C.ResultA) + " vs " + printTerm(Ctx, C.ResultB) +
           "\n";
  }
  for (const std::string &Caveat : Caveats) {
    Out += "note: ";
    Out += Caveat;
    Out += '\n';
  }
  return Out;
}

/// Collects the free variables of \p Term in first-occurrence order.
static void collectVarsOrdered(const AlgebraContext &Ctx, TermId Term,
                               std::vector<VarId> &Vars,
                               std::unordered_set<VarId> &Seen) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (Seen.insert(Node.Var).second)
      Vars.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVarsOrdered(Ctx, Child, Vars, Seen);
}


/// Collects every position (path of child indices) in \p Term whose
/// subterm is an operation application — the candidate redex positions
/// for critical-pair overlap.
static void collectOpPositions(const AlgebraContext &Ctx, TermId Term,
                               std::vector<uint32_t> &Path,
                               std::vector<std::vector<uint32_t>> &Out) {
  if (Ctx.node(Term).Kind != TermKind::Op)
    return;
  Out.push_back(Path);
  auto Children = Ctx.children(Term);
  for (uint32_t I = 0; I != Children.size(); ++I) {
    Path.push_back(I);
    collectOpPositions(Ctx, Children[I], Path, Out);
    Path.pop_back();
  }
}

static std::vector<std::vector<uint32_t>>
nonVariablePositions(const AlgebraContext &Ctx, TermId Term) {
  std::vector<uint32_t> Path;
  std::vector<std::vector<uint32_t>> Out;
  collectOpPositions(Ctx, Term, Path, Out);
  return Out;
}

/// The subterm of \p Term at \p Pos.
static TermId subtermAt(const AlgebraContext &Ctx, TermId Term,
                        const std::vector<uint32_t> &Pos) {
  for (uint32_t Step : Pos)
    Term = Ctx.children(Term)[Step];
  return Term;
}

/// Returns \p Term with the subterm at \p Pos replaced by \p Repl.
static TermId replaceAt(AlgebraContext &Ctx, TermId Term,
                        const std::vector<uint32_t> &Pos, TermId Repl,
                        size_t Depth = 0) {
  if (Depth == Pos.size())
    return Repl;
  // Copy the children out: rebuilding below creates terms, which may
  // reallocate the child pool under a live span.
  auto Span = Ctx.children(Term);
  std::vector<TermId> Children(Span.begin(), Span.end());
  Children[Pos[Depth]] =
      replaceAt(Ctx, Children[Pos[Depth]], Pos, Repl, Depth + 1);
  return Ctx.makeOp(Ctx.node(Term).Op, Children);
}

namespace {
/// Everything one rule-pair examination reads and mutates, bundled so
/// the same code runs on the main context and on worker replicas.
struct PairSweepState {
  AlgebraContext &Ctx;
  RewriteEngine &Engine;
  TermEnumerator &Enumerator;
  unsigned GroundDepth;
};
} // namespace

/// Enumerates the critical-pair peaks between \p RuleA (every
/// non-variable position of its left-hand side) and \p RuleB (renamed
/// apart, at that position) and calls \p Visit(Overlap, InstA, InstB)
/// for each, in position order. Shared by the sweep and the
/// equality-saturation pre-pass so the two enumerations cannot drift:
/// the pre-pass addresses its verdicts by overlap ordinal, which is
/// only sound because both passes walk this exact loop. (Fresh
/// variables from renaming differ between calls; the enumeration
/// *structure* does not.)
static void
forEachOverlap(AlgebraContext &Ctx, const Rule &RuleA, size_t AI,
               const Rule &RuleB, size_t BI,
               const std::function<void(TermId, TermId, TermId)> &Visit) {
  std::vector<std::vector<uint32_t>> Positions =
      nonVariablePositions(Ctx, RuleA.Lhs);
  auto [LhsB, RhsB] = renameRuleApart(Ctx, RuleB.Lhs, RuleB.Rhs);

  for (const std::vector<uint32_t> &Pos : Positions) {
    bool Root = Pos.empty();
    // Root overlaps are symmetric: visit each unordered pair once.
    // A rule trivially overlaps itself at the root; skip that too.
    if (Root && BI <= AI)
      continue;
    TermId Sub = subtermAt(Ctx, RuleA.Lhs, Pos);
    if (Ctx.node(Sub).Op != RuleB.HeadOp)
      continue;
    std::optional<Substitution> Mgu = unifyTerms(Ctx, Sub, LhsB);
    if (!Mgu)
      continue;

    TermId Overlap = applySubstitution(Ctx, RuleA.Lhs, *Mgu);
    TermId InstA = applySubstitution(Ctx, RuleA.Rhs, *Mgu);
    TermId InstB =
        applySubstitution(Ctx, replaceAt(Ctx, RuleA.Lhs, Pos, RhsB), *Mgu);
    Visit(Overlap, InstA, InstB);
  }
}

/// Examines every critical pair between \p RuleA (any position of its
/// left-hand side) and \p RuleB (renamed apart, at that position).
/// \p Report receives each divergent pair; \p NormFailure each
/// normalization failure message. \p AI / \p BI are the rules' indices
/// in the system (root overlaps are visited once per unordered pair).
/// \p Proved, when non-null, holds one flag per overlap ordinal (the
/// order forEachOverlap enumerates): a set flag means one equality
/// saturation already merged that peak's two reducts, so the bounded
/// ground pass — which can only ever re-confirm a theory equality — is
/// skipped for it. The symbolic normalize-and-join stays on regardless,
/// so findings and caveats are unchanged.
static void checkRulePair(
    PairSweepState &PS, const Rule &RuleA, size_t AI, const Rule &RuleB,
    size_t BI,
    const std::function<void(const Rule &, const Rule &, TermId, TermId,
                             TermId)> &Report,
    const std::function<void(const std::string &)> &NormFailure,
    const std::vector<uint8_t> *Proved = nullptr) {
  AlgebraContext &Ctx = PS.Ctx;
  auto normalizeOrCaveat = [&](TermId Term) -> TermId {
    Result<TermId> Normal = PS.Engine.normalize(Term);
    if (Normal)
      return *Normal;
    NormFailure("normalization failed during the check: " +
                Normal.error().message());
    return TermId();
  };

  size_t Ordinal = ~size_t(0);
  forEachOverlap(Ctx, RuleA, AI, RuleB, BI, [&](TermId Overlap, TermId InstA,
                                                TermId InstB) {
    ++Ordinal;
    // Critical pair: both peak reducts must join.
    TermId NormA = normalizeOrCaveat(InstA);
    TermId NormB = normalizeOrCaveat(InstB);
    if (NormA.isValid() && NormB.isValid() && NormA != NormB) {
      // Guard-aware second look before reporting: reducts that differ
      // only in undecided guard structure may join under case analysis
      // on the guards' values — reporting them would be a false
      // positive (every ground instance agrees). The ground pass below
      // still cross-validates such pairs.
      GuardJoiner Joiner(Ctx, PS.Engine);
      GuardJoiner::JoinResult Joined = Joiner.join(InstA, InstB);
      if (Joined.Status != PairStatus::Joined &&
          Joined.Status != PairStatus::JoinedByCases) {
        Report(RuleA, RuleB, Overlap, NormA, NormB);
        return;
      }
    }
    if (PS.GroundDepth == 0)
      return;
    if (Proved && Ordinal < Proved->size() && (*Proved)[Ordinal])
      return;

    // Ground pass: instantiate the peak's remaining variables with
    // enumerated values; divergence may only appear on concrete
    // atoms (e.g. a SAME guard deciding differently per rule).
    std::vector<VarId> FreeVars;
    std::unordered_set<VarId> SeenVars;
    collectVarsOrdered(Ctx, Overlap, FreeVars, SeenVars);
    collectVarsOrdered(Ctx, InstA, FreeVars, SeenVars);
    collectVarsOrdered(Ctx, InstB, FreeVars, SeenVars);
    if (FreeVars.empty())
      return;

    std::vector<const std::vector<TermId> *> Values;
    bool Empty = false;
    for (VarId Var : FreeVars) {
      const std::vector<TermId> &Set =
          PS.Enumerator.enumerate(Ctx.var(Var).Sort, PS.GroundDepth);
      if (Set.empty())
        Empty = true;
      Values.push_back(&Set);
    }
    if (Empty)
      return;

    constexpr size_t MaxGroundInstances = 512;
    size_t Count = 0;
    std::vector<size_t> Index(FreeVars.size(), 0);
    bool FoundHere = false;
    while (!FoundHere && Count < MaxGroundInstances) {
      Substitution Ground;
      for (size_t I = 0; I != FreeVars.size(); ++I)
        Ground.bind(FreeVars[I], (*Values[I])[Index[I]]);
      TermId GroundA =
          normalizeOrCaveat(applySubstitution(Ctx, InstA, Ground));
      TermId GroundB =
          normalizeOrCaveat(applySubstitution(Ctx, InstB, Ground));
      if (GroundA.isValid() && GroundB.isValid() && GroundA != GroundB) {
        Report(RuleA, RuleB, applySubstitution(Ctx, Overlap, Ground),
               GroundA, GroundB);
        FoundHere = true;
      }
      ++Count;
      size_t P = 0;
      while (P != Index.size()) {
        if (++Index[P] < Values[P]->size())
          break;
        Index[P] = 0;
        ++P;
      }
      if (P == Index.size())
        break;
    }
  });
}

ConsistencyReport
algspec::checkConsistency(AlgebraContext &Ctx,
                          const std::vector<const Spec *> &Specs,
                          unsigned GroundDepth,
                          EnumeratorOptions EnumOptions,
                          ParallelOptions Par, EngineOptions Eng,
                          const ConvergenceReport *Convergence,
                          EqSatMode EGraph) {
  ConsistencyReport Report;

  DiagnosticEngine Diags;
  RewriteSystem System = RewriteSystem::build(Ctx, Specs, Diags);
  if (Diags.hasErrors())
    Report.Caveats.push_back(
        "some axioms could not be oriented into rules and were skipped");

  // A convergence certificate covering the whole rule set IS a
  // consistency proof: normal forms are canonical, so no overlap can
  // rewrite to two disagreeing results. Skip the sweep it discharged.
  if (Convergence && Convergence->provenConfluent() && !Diags.hasErrors()) {
    if (Convergence->Overall == ConvergenceVerdict::Orthogonal)
      Report.ProvenBy =
          "orthogonal (left-linear, no critical pairs, terminating); "
          "normal forms are canonical and the critical-pair sweep was "
          "skipped";
    else
      Report.ProvenBy =
          "convergent (terminating, every critical pair joins); normal "
          "forms are canonical and the critical-pair sweep was skipped";
    for (const std::string &Caveat : Convergence->Caveats)
      Report.Caveats.push_back(Caveat);
    return Report;
  }
  RewriteEngine Engine(Ctx, System, Eng);
  TermEnumerator Enumerator(Ctx, std::move(EnumOptions));

  const std::vector<Rule> &Rules = System.rules();
  PairSweepState PS{Ctx, Engine, Enumerator, GroundDepth};
  size_t R = Rules.size();

  // Equality-saturation screen: when the certifier could not prove full
  // convergence but its critical-pair analysis holds (every pair joins,
  // rules left-linear, orientation complete), one saturation over every
  // peak's two reducts discharges the whole batch at once — any merged
  // pair is a theory equality, so its bounded ground pass (up to 512
  // instance normalizations per overlap) can only re-confirm it and is
  // skipped. With the oracle active the sweep runs on the calling
  // thread: the screen replaces the worker pool as the fast path and
  // the report stays jobs-invariant by construction. EqSatMode::On runs
  // the saturation for its counters even without the gate; its verdicts
  // are only consumed when the gate holds.
  bool Gate = Convergence && !Diags.hasErrors() &&
              Convergence->localJoinability();
  bool RunSaturation =
      EGraph == EqSatMode::On || (EGraph == EqSatMode::Auto && Gate);
  std::vector<uint8_t> Merged;
  std::vector<std::pair<size_t, size_t>> Ranges; // per flat pair: [start, count)
  if (RunSaturation && R != 0 &&
      R <= std::numeric_limits<size_t>::max() / R) {
    std::vector<std::pair<TermId, TermId>> Obligations;
    Ranges.resize(R * R, {0, 0});
    for (size_t AI = 0; AI != R; ++AI)
      for (size_t BI = 0; BI != R; ++BI) {
        size_t Start = Obligations.size();
        forEachOverlap(Ctx, Rules[AI], AI, Rules[BI], BI,
                       [&](TermId, TermId InstA, TermId InstB) {
                         Obligations.emplace_back(InstA, InstB);
                       });
        Ranges[AI * R + BI] = {Start, Obligations.size() - Start};
      }
    EqSatProver Prover(Ctx, System, Engine);
    Merged = Prover.proveBatch(Obligations);
    if (!Gate)
      Merged.assign(Merged.size(), 0); // counters only, verdicts ungated
    EqSatProverStats PSt = Prover.stats();
    Report.Engine.EGraphClasses += PSt.Graph.Classes;
    Report.Engine.EGraphNodes += PSt.Graph.Nodes;
    Report.Engine.EGraphMerges += PSt.Graph.Merges;
    Report.Engine.EGraphRebuilds += PSt.Graph.RebuildRounds;
  }
  bool Screened = !Ranges.empty() && Gate;
  std::unique_ptr<ParallelDriver<ReplicaWorker>> Driver =
      Screened ? nullptr : makeReplicaDriver(Par, Ctx, Specs, Eng, EnumOptions);

  // Deduplicate findings: one report per distinct (overlap, results).
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> Seen;
  auto report = [&](const Rule &RuleA, const Rule &RuleB, TermId Overlap,
                    TermId NormA, TermId NormB) {
    if (!Seen.insert({Overlap.index(), NormA.index(), NormB.index()})
             .second)
      return;
    Report.Consistent = false;
    Report.Contradictions.emplace_back(
        RuleA.SpecName, RuleB.SpecName, RuleA.AxiomNumber,
        RuleB.AxiomNumber, Overlap, NormA, NormB);
  };
  auto caveat = [&](const std::string &Message) {
    Report.Caveats.push_back(Message);
  };

  // Full Knuth-Bendix critical pairs: for every rule A, every non-variable
  // position p of A's left-hand side, and every rule B (renamed apart)
  // whose left-hand side unifies with A.Lhs|p, the peak sigma(A.Lhs) can
  // rewrite two ways: by A at the root, or by B at p. Both results must
  // join; a non-joinable pair is a contradiction between the two axioms.
  //
  // Parallel sweep: workers classify rule pairs (flat index AI*R + BI,
  // matching the serial loop nesting) against their replicas; pairs with
  // any finding or failed normalization are re-examined on the main
  // context in serial order, which regenerates exact messages and keeps
  // the dedup set's behaviour — so the report is byte-identical.
  if (Screened) {
    // Oracle path: serial sweep with per-overlap ground passes elided
    // wherever the batch saturation merged the reducts.
    for (size_t AI = 0; AI != R; ++AI)
      for (size_t BI = 0; BI != R; ++BI) {
        auto [Start, Count] = Ranges[AI * R + BI];
        std::vector<uint8_t> Proved(Merged.begin() + Start,
                                    Merged.begin() + Start + Count);
        checkRulePair(PS, Rules[AI], AI, Rules[BI], BI, report, caveat,
                      &Proved);
      }
  } else if (Driver && R != 0 &&
             R <= std::numeric_limits<size_t>::max() / R &&
             R * R <= Par.MaxFlatSpace) {
    std::vector<uint8_t> Flagged = Driver->map<uint8_t>(
        R * R, [&](ReplicaWorker &W, size_t Flat) -> uint8_t {
          if (!W.Engine || W.System->rules().size() != R)
            return 1;
          const std::vector<Rule> &WRules = W.System->rules();
          bool Hit = false;
          PairSweepState WPS{W.Rep->context(), *W.Engine, *W.Enum,
                             GroundDepth};
          checkRulePair(
              WPS, WRules[Flat / R], Flat / R, WRules[Flat % R], Flat % R,
              [&](const Rule &, const Rule &, TermId, TermId, TermId) {
                Hit = true;
              },
              [&](const std::string &) { Hit = true; });
          return Hit ? 1 : 0;
        });
    for (size_t Flat = 0; Flat != R * R; ++Flat)
      if (Flagged[Flat])
        checkRulePair(PS, Rules[Flat / R], Flat / R, Rules[Flat % R],
                      Flat % R, report, caveat);
  } else {
    for (size_t AI = 0; AI != R; ++AI)
      for (size_t BI = 0; BI != R; ++BI)
        checkRulePair(PS, Rules[AI], AI, Rules[BI], BI, report, caveat);
  }
  EngineStats Oracle = Report.Engine; // EGraph* counters folded above
  Report.Engine = Engine.stats();
  Report.Engine += Oracle;
  if (Driver)
    for (ReplicaWorker *W : Driver->states())
      if (W->Engine)
        Report.Engine += W->Engine->stats();
  return Report;
}
