//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consistency checking (paper, section 3).
///
/// "If any two of these [statements of fact] are contradictory, the
/// axiomatization is inconsistent." Two axioms contradict when some term
/// both can rewrite — via overlapping left-hand sides — to results that
/// disagree. The checker:
///
///  1. computes **critical pairs** (full Knuth-Bendix, not just root
///     overlaps): for every rule A, every operation position p inside
///     A's left-hand side, and every rule B whose left-hand side
///     unifies with A.Lhs|p after renaming apart, the peak σ(A.Lhs)
///     rewrites two ways — by A at the root and by B at p; both reducts
///     are normalized and non-joinable pairs are reported;
///  2. optionally cross-validates on **ground instances**: enumerated
///     instantiations of the overlap are normalized under each rule
///     first, catching divergence that only manifests on concrete
///     values.
///
/// Like the paper's notion, this is at heart a refutation procedure:
/// findings are real contradictions (up to the bounded normalization).
/// A clean report alone is not a consistency proof — **unless** the
/// caller supplies a convergence certificate (check/Convergence.h) that
/// covers the workspace. A proven-convergent rule set has canonical
/// normal forms, so no term can rewrite to two disagreeing results; the
/// checker then reports "proven consistent" and skips the critical-pair
/// sweep the certificate already discharged. Without a certificate the
/// bounded-refutation caveat stands.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_CONSISTENCY_H
#define ALGSPEC_CHECK_CONSISTENCY_H

#include "ast/Ids.h"
#include "check/TermEnumerator.h"
#include "egraph/EqSat.h"
#include "rewrite/Engine.h"
#include "support/Parallel.h"

#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;
struct ConvergenceReport;

/// One detected contradiction between two axioms.
struct Contradiction {
  std::string SpecA, SpecB;
  unsigned AxiomA = 0, AxiomB = 0;
  /// The overlapping term both axioms rewrite.
  TermId Overlap;
  /// The two disagreeing normal forms.
  TermId ResultA;
  TermId ResultB;
};

/// Outcome of a consistency check.
struct ConsistencyReport {
  bool Consistent = true;
  std::vector<Contradiction> Contradictions;
  std::vector<std::string> Caveats;
  /// Non-empty when a convergence certificate upgraded the clean report
  /// to a proof; describes the proof shape (e.g. "convergent: ...").
  /// The critical-pair sweep is skipped in that case.
  std::string ProvenBy;
  /// Rewrite-engine counters aggregated over the main engine and every
  /// worker replica; not part of the verdict and not deterministic
  /// across worker counts.
  EngineStats Engine;

  std::string render(const AlgebraContext &Ctx) const;
};

/// Critical-pair analysis over all axioms of \p Specs, with bounded
/// ground instantiation (\p GroundDepth = 0 disables the ground pass).
///
/// With \p Par asking for more than one job, rule pairs are sharded
/// across a worker pool (each worker examining its pairs against a
/// private re-elaboration of the specs) and findings are merged in the
/// serial pair order, so the report is byte-identical to the serial
/// sweep at any job count.
///
/// \p Eng configures the rewrite engines (main and worker replicas) —
/// notably EngineOptions::Compile, the compiled-vs-interpreted knob.
///
/// \p Convergence, when non-null and proving the whole rule set
/// confluent and terminating, upgrades a clean report to "proven
/// consistent" and skips the sweep (canonical normal forms leave no two
/// axioms room to disagree). A certificate that does not cover the set
/// changes nothing.
///
/// \p EGraph controls the equality-saturation screen (src/egraph/):
/// when the certificate falls short of full convergence but its
/// critical-pair analysis holds (ConvergenceReport::localJoinability),
/// one saturation over every peak's reducts runs before the sweep and
/// each merged pair skips its bounded ground pass. The report is
/// byte-identical with the screen on or off (pinned by the e-graph
/// differential tests); only the work changes.
ConsistencyReport
checkConsistency(AlgebraContext &Ctx, const std::vector<const Spec *> &Specs,
                 unsigned GroundDepth = 2,
                 EnumeratorOptions EnumOptions = EnumeratorOptions(),
                 ParallelOptions Par = ParallelOptions(),
                 EngineOptions Eng = EngineOptions(),
                 const ConvergenceReport *Convergence = nullptr,
                 EqSatMode EGraph = EqSatMode::Auto);

} // namespace algspec

#endif // ALGSPEC_CHECK_CONSISTENCY_H
