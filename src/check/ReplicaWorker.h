//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ReplicaWorker: the per-worker state shared by every parallel checker.
///
/// A worker owns a private re-elaboration of the spec set (Replica) plus
/// a rewrite system and engine built over it, so it can normalize its
/// shard of the enumerated ground-term space without touching the
/// caller's mutable term arena. See docs/VERIFICATION.md, "Concurrency
/// model".
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_REPLICAWORKER_H
#define ALGSPEC_CHECK_REPLICAWORKER_H

#include "ast/AlgebraContext.h"
#include "check/TermEnumerator.h"
#include "parser/Replicator.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "support/Parallel.h"

#include <memory>
#include <vector>

namespace algspec {

struct ReplicaWorker {
  std::unique_ptr<Replica> Rep;
  std::unique_ptr<RewriteSystem> System;
  /// Null when replication failed; the caller routes this worker's
  /// indices back through the main-context engine during the merge.
  std::unique_ptr<RewriteEngine> Engine;
  /// Enumerator over the replica context; aligned with the caller's
  /// (same options, identical constructor registration order).
  std::unique_ptr<TermEnumerator> Enum;
  /// Epoch after elaboration, engine warmup, and any pinned cached
  /// enumerations — everything younger is per-shard scratch.
  ArenaEpoch Base;

  /// Builds a worker over a fresh re-elaboration of \p Specs. Reads
  /// \p Main only, so concurrent calls from several pool threads are
  /// safe while the caller blocks in wait().
  static std::unique_ptr<ReplicaWorker>
  create(const AlgebraContext &Main, std::vector<const Spec *> Specs,
         EngineOptions EngOpts, EnumeratorOptions EnumOpts);

  /// Frees the scratch terms of the finished shard (the driver's
  /// AfterChunk hook): truncates back to Base — resetting the arena
  /// instead of rebuilding the replica — unless cached enumerations
  /// extend past it, in which case Base ratchets forward to pin them
  /// (plus at most one shard's scratch) rather than re-enumerate every
  /// shard. No-op for a worker whose replication failed.
  void resetScratch();
};

/// A driver whose per-worker state is a ReplicaWorker over \p Specs, or
/// null when \p Par resolves to one job or \p Specs does not replicate
/// (probed on the calling thread) — callers keep the serial sweep then.
std::unique_ptr<ParallelDriver<ReplicaWorker>>
makeReplicaDriver(const ParallelOptions &Par, const AlgebraContext &Main,
                  const std::vector<const Spec *> &Specs,
                  EngineOptions EngOpts = EngineOptions(),
                  EnumeratorOptions EnumOpts = EnumeratorOptions());

} // namespace algspec

#endif // ALGSPEC_CHECK_REPLICAWORKER_H
