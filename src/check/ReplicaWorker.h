//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ReplicaWorker: the per-worker state shared by every parallel checker.
///
/// A worker owns a private re-elaboration of the spec set (Replica) plus
/// a rewrite system and engine built over it, so it can normalize its
/// shard of the enumerated ground-term space without touching the
/// caller's mutable term arena. See docs/VERIFICATION.md, "Concurrency
/// model".
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_REPLICAWORKER_H
#define ALGSPEC_CHECK_REPLICAWORKER_H

#include "check/TermEnumerator.h"
#include "parser/Replicator.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "support/Parallel.h"

#include <memory>
#include <vector>

namespace algspec {

struct ReplicaWorker {
  std::unique_ptr<Replica> Rep;
  std::unique_ptr<RewriteSystem> System;
  /// Null when replication failed; the caller routes this worker's
  /// indices back through the main-context engine during the merge.
  std::unique_ptr<RewriteEngine> Engine;
  /// Enumerator over the replica context; aligned with the caller's
  /// (same options, identical constructor registration order).
  std::unique_ptr<TermEnumerator> Enum;

  /// Builds a worker over a fresh re-elaboration of \p Specs. Reads
  /// \p Main only, so concurrent calls from several pool threads are
  /// safe while the caller blocks in wait().
  static std::unique_ptr<ReplicaWorker>
  create(const AlgebraContext &Main, std::vector<const Spec *> Specs,
         EngineOptions EngOpts, EnumeratorOptions EnumOpts);
};

/// A driver whose per-worker state is a ReplicaWorker over \p Specs, or
/// null when \p Par resolves to one job or \p Specs does not replicate
/// (probed on the calling thread) — callers keep the serial sweep then.
std::unique_ptr<ParallelDriver<ReplicaWorker>>
makeReplicaDriver(const ParallelOptions &Par, const AlgebraContext &Main,
                  const std::vector<const Spec *> &Specs,
                  EngineOptions EngOpts = EngineOptions(),
                  EnumeratorOptions EnumOpts = EnumeratorOptions());

} // namespace algspec

#endif // ALGSPEC_CHECK_REPLICAWORKER_H
