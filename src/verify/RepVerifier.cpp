//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/RepVerifier.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Convergence.h"
#include "check/ErrorFlow.h"
#include "check/ReplicaWorker.h"
#include "check/Unify.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"
#include "specs/BuiltinSpecs.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_set>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string ObligationVerdict::render(const AlgebraContext &Ctx) const {
  std::string Out =
      Status == ObligationStatus::Discharged ? "[discharged] " : "[ASSUMED] ";
  Out += HostSpec + " axiom (" + std::to_string(HostAxiom) + "), site " +
         printTerm(Ctx, Site) + ": " + printTerm(Ctx, CaseLhs) + " = error";
  if (Condition.isValid())
    Out += " iff " + printTerm(Ctx, Condition);
  if (!Note.empty())
    Out += " (" + Note + ")";
  return Out;
}

std::string VerifyReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  Out += "representation values considered: " +
         std::to_string(NumRepValues) + "\n";
  if (DecidableEquality)
    Out += "decidable equality: the implementation rules are proven "
           "convergent, so normal-form comparison decides every "
           "instance\n";
  for (const AxiomVerdict &V : Verdicts) {
    Out += (V.Label.empty() ? "axiom " + std::to_string(V.AxiomNumber)
                            : V.Label) +
           ": ";
    if (V.Holds) {
      if (V.ProvedSymbolically)
        Out += "verified (symbolically, for all values)\n";
      else
        Out += "verified (" + std::to_string(V.InstancesChecked) +
               " instances)\n";
      continue;
    }
    Out += "FAILED\n";
    if (V.Failure) {
      Out += "  assignment: " + V.Failure->Assignment + "\n";
      Out += "  lhs " + printTerm(Ctx, V.Failure->Lhs) + " ~> " +
             printTerm(Ctx, V.Failure->LhsNormal) + "\n";
      Out += "  rhs " + printTerm(Ctx, V.Failure->Rhs) + " ~> " +
             printTerm(Ctx, V.Failure->RhsNormal) + "\n";
    }
  }
  if (!Obligations.empty()) {
    Out += "definedness obligations:\n";
    for (const ObligationVerdict &O : Obligations)
      Out += "  " + O.render(Ctx) + "\n";
    Out += AllObligationsDischarged
               ? "all definedness obligations discharged\n"
               : "verification is conditional on the assumptions above\n";
  }
  for (const std::string &Caveat : Caveats)
    Out += "note: " + Caveat + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Translation: abstract terms to representation terms
//===----------------------------------------------------------------------===//

namespace {

/// Rewrites an abstract axiom side into the representation: abstract
/// operations become their implementations, abstract-sorted variables
/// become representation-sorted variables (shared across both sides via
/// the persistent VarMap), and abstract errors become representation
/// errors.
class Translator {
public:
  Translator(AlgebraContext &Ctx, const RepMapping &Mapping)
      : Ctx(Ctx), Mapping(Mapping) {}

  TermId translate(TermId Term) {
    const TermNode Node = Ctx.node(Term);
    switch (Node.Kind) {
    case TermKind::Atom:
    case TermKind::Int:
      return Term;
    case TermKind::Error:
      return Node.Sort == Mapping.AbstractSort
                 ? Ctx.makeError(Mapping.RepSort)
                 : Term;
    case TermKind::Var: {
      if (Ctx.var(Node.Var).Sort != Mapping.AbstractSort)
        return Term;
      auto It = VarMap.find(Node.Var);
      if (It != VarMap.end())
        return It->second;
      TermId Fresh = Ctx.makeVar(
          Ctx.addVar(std::string(Ctx.varName(Node.Var)) + "_r",
                     Mapping.RepSort));
      VarMap.emplace(Node.Var, Fresh);
      return Fresh;
    }
    case TermKind::Op: {
      auto Span = Ctx.children(Term);
      std::vector<TermId> Children(Span.begin(), Span.end());
      for (TermId &Child : Children)
        Child = translate(Child);
      const OpInfo &Info = Ctx.op(Node.Op);
      if (Info.Builtin == BuiltinOp::Ite)
        return Ctx.makeIte(Children[0], Children[1], Children[2]);
      auto It = Mapping.OpMap.find(Node.Op);
      OpId Target = It != Mapping.OpMap.end() ? It->second : Node.Op;
      return Ctx.makeOp(Target, Children);
    }
    }
    return Term;
  }

private:
  AlgebraContext &Ctx;
  const RepMapping &Mapping;
  std::unordered_map<VarId, TermId> VarMap;
};

} // namespace

//===----------------------------------------------------------------------===//
// Representation value domains
//===----------------------------------------------------------------------===//

/// Enumerates the representation values abstract-sorted variables range
/// over, according to the configured domain.
static std::vector<TermId> collectRepValues(AlgebraContext &Ctx,
                                            const Spec &Abstract,
                                            const RepMapping &Mapping,
                                            const VerifyOptions &Options,
                                            RewriteEngine &Engine,
                                            TermEnumerator &Enumerator,
                                            VerifyReport &Report) {
  std::vector<TermId> Values;
  std::unordered_set<TermId> Seen;

  auto keep = [&](TermId Value) {
    if (!Value.isValid() || Ctx.isError(Value))
      return;
    if (Options.Invariant.isValid()) {
      TermId Guard = Ctx.makeOp(Options.Invariant, {Value});
      Result<TermId> Holds = Engine.normalize(Guard);
      if (!Holds || *Holds != Ctx.trueTerm())
        return;
    }
    if (Seen.insert(Value).second)
      Values.push_back(Value);
  };

  if (Options.Domain == ValueDomain::FreeTerms) {
    for (TermId Term : Enumerator.enumerate(Mapping.RepSort, Options.Depth)) {
      Result<TermId> Normal = Engine.normalize(Term);
      if (!Normal) {
        Report.Caveats.push_back("normalization of a candidate value "
                                 "failed: " + Normal.error().message());
        continue;
      }
      keep(*Normal);
      if (Values.size() >= Options.MaxValues) {
        Report.Caveats.push_back("representation-value cap reached; the "
                                 "check is not exhaustive at this depth");
        break;
      }
    }
    if (Enumerator.wasTruncated(Mapping.RepSort, Options.Depth))
      Report.Caveats.push_back("enumeration of the representation sort "
                               "was truncated");
    return Values;
  }

  // Reachable domain: close the impl images of the abstract constructors
  // over themselves, breadth-first, Depth generator applications deep.
  std::vector<OpId> Generators;
  for (OpId Ctor : Abstract.constructorsOf(Ctx, Mapping.AbstractSort)) {
    auto It = Mapping.OpMap.find(Ctor);
    if (It == Mapping.OpMap.end()) {
      Report.Caveats.push_back(
          "abstract constructor '" + std::string(Ctx.opName(Ctor)) +
          "' has no implementation; reachable values are incomplete");
      continue;
    }
    Generators.push_back(It->second);
  }

  std::vector<TermId> Frontier;
  auto emit = [&](TermId Application) -> bool {
    Result<TermId> Normal = Engine.normalize(Application);
    if (!Normal) {
      Report.Caveats.push_back("normalization of a generated value "
                               "failed: " + Normal.error().message());
      return true;
    }
    if (Ctx.isError(*Normal))
      return true;
    if (!Seen.insert(*Normal).second)
      return true;
    Values.push_back(*Normal);
    Frontier.push_back(*Normal);
    return Values.size() < Options.MaxValues;
  };

  // Seed: nullary generators.
  for (OpId Gen : Generators)
    if (Ctx.op(Gen).arity() == 0)
      emit(Ctx.makeOp(Gen, {}));

  for (unsigned Level = 1; Level < Options.Depth; ++Level) {
    std::vector<TermId> Current;
    std::swap(Current, Frontier);
    if (Current.empty())
      break;
    for (TermId Value : Current) {
      for (OpId Gen : Generators) {
        const OpInfo &Info = Ctx.op(Gen);
        if (Info.arity() == 0)
          continue;
        // The first RepSort argument takes the frontier value; remaining
        // arguments take enumerated ground values.
        std::vector<std::vector<TermId>> ArgChoices;
        bool UsedValue = false;
        for (SortId ArgSort : Info.ArgSorts) {
          if (!UsedValue && ArgSort == Mapping.RepSort) {
            ArgChoices.push_back({Value});
            UsedValue = true;
            continue;
          }
          ArgChoices.push_back(Enumerator.enumerate(ArgSort, 2));
        }
        // Odometer over the argument choices.
        std::vector<size_t> Index(ArgChoices.size(), 0);
        bool Exhausted = false;
        while (!Exhausted) {
          std::vector<TermId> Args(ArgChoices.size());
          bool Ok = true;
          for (size_t I = 0; I != ArgChoices.size(); ++I) {
            if (ArgChoices[I].empty()) {
              Ok = false;
              break;
            }
            Args[I] = ArgChoices[I][Index[I]];
          }
          if (!Ok)
            break;
          if (!emit(Ctx.makeOp(Gen, Args))) {
            Report.Caveats.push_back(
                "representation-value cap reached; the check is not "
                "exhaustive at this depth");
            return Values;
          }
          size_t Pos = 0;
          while (Pos != Index.size()) {
            if (++Index[Pos] < ArgChoices[Pos].size())
              break;
            Index[Pos] = 0;
            ++Pos;
          }
          Exhausted = Pos == Index.size();
        }
      }
    }
  }
  return Values;
}

//===----------------------------------------------------------------------===//
// Main verification loop
//===----------------------------------------------------------------------===//

/// Collects the free variables of \p Term in first-occurrence order.
static void collectVars(const AlgebraContext &Ctx, TermId Term,
                        std::vector<VarId> &Vars,
                        std::unordered_set<VarId> &Seen) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (Seen.insert(Node.Var).second)
      Vars.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Vars, Seen);
}

namespace {

/// Shared state for instantiation-based equation checking.
struct CheckState {
  AlgebraContext &Ctx;
  RewriteEngine &Engine;
  const RewriteSystem &System;
  TermEnumerator &Enumerator;
  const RepMapping &Mapping;
  const VerifyOptions &Options;
  const std::vector<TermId> &RepValues;
  VerifyReport &Report;
  /// Non-null when the instance sweeps run on a worker pool.
  ParallelDriver<ReplicaWorker> *Driver = nullptr;
  /// Non-null when the equality-saturation oracle is enabled; always
  /// consulted on the calling thread (deterministic at any job count).
  EqSatProver *Prover = nullptr;
  /// True when the convergence gate licenses acting on the prover's
  /// verdicts; false runs the prover for its counters only (EqSatMode::On
  /// without the gate).
  bool TrustProver = false;
};

/// Checks Lhs = Rhs (open terms over representation-sorted and ground
/// variables) for every assignment: representation variables range over
/// the collected value domain, all others over enumerated ground values.
AxiomVerdict checkEquation(CheckState &CS, std::string Label,
                           unsigned Number, TermId LhsT, TermId RhsT) {
  AxiomVerdict Verdict;
  Verdict.AxiomNumber = Number;
  Verdict.Label = std::move(Label);

  // Symbolic attempt: if the open sides join, the equation holds for
  // every assignment — no bound involved. (Sound because rewriting is
  // equational reasoning; open failure proves nothing, so fall through.)
  // Open recursive definitions can expand forever, so the attempt runs
  // on its own engine with a small fuel budget and gives up quietly.
  if (CS.Options.TrySymbolic) {
    EngineOptions SymOptions = CS.Options.Engine;
    if (!CS.Report.DecidableEquality) {
      // Provable obligations join within a few dozen steps; guarded ones
      // expand their recursion forever, so keep the budget tight. Under
      // a convergence certificate every normalization terminates, so the
      // attempt keeps its full fuel instead.
      SymOptions.MaxSteps = std::min<uint64_t>(SymOptions.MaxSteps, 400);
      SymOptions.MaxDepth = std::min(SymOptions.MaxDepth, 400u);
    }
    RewriteEngine SymEngine(CS.Ctx, CS.System, SymOptions);
    Result<TermId> LhsOpen = SymEngine.normalize(LhsT);
    Result<TermId> RhsOpen = SymEngine.normalize(RhsT);
    if (LhsOpen && RhsOpen && *LhsOpen == *RhsOpen) {
      Verdict.ProvedSymbolically = true;
      return Verdict;
    }
    // Convergence also licenses sweeping the pre-reduced open sides:
    // nf(sigma(nf(s))) = nf(sigma(s)), so every instance starts from
    // the smaller term.
    if (CS.Report.DecidableEquality) {
      if (LhsOpen)
        LhsT = *LhsOpen;
      if (RhsOpen)
        RhsT = *RhsOpen;
    }
  }

  std::vector<VarId> Vars;
  std::unordered_set<VarId> Seen;
  collectVars(CS.Ctx, LhsT, Vars, Seen);
  collectVars(CS.Ctx, RhsT, Vars, Seen);

  std::vector<const std::vector<TermId> *> Choices;
  bool Empty = false;
  for (VarId Var : Vars) {
    SortId Sort = CS.Ctx.var(Var).Sort;
    const std::vector<TermId> &Set = Sort == CS.Mapping.RepSort
                                         ? CS.RepValues
                                         : CS.Enumerator.enumerate(Sort, 2);
    if (Set.empty())
      Empty = true;
    Choices.push_back(&Set);
  }
  if (Empty) {
    CS.Report.Caveats.push_back(Verdict.Label +
                                " quantifies over an uninhabited sort; "
                                "skipped");
    return Verdict;
  }

  // The odometer space flattened: variable 0 is the least significant
  // digit. Only min(Total, cap) instances are ever visited.
  size_t Total = 1;
  for (const std::vector<TermId> *Set : Choices) {
    if (Total > std::numeric_limits<size_t>::max() / Set->size()) {
      Total = std::numeric_limits<size_t>::max();
      break;
    }
    Total *= Set->size();
  }
  size_t Capped = std::min(Total, CS.Options.MaxInstancesPerAxiom);

  // Equality-saturation oracle: one saturation proof covers every
  // assignment, so the whole sweep is skipped. The verdict reads
  // exactly like a completed sweep (same instance count, same cap
  // caveat) — the e-graph changes the cost of the answer, never its
  // text. An untrusted prover (mode On without the convergence gate)
  // still runs for its counters, but its answer is ignored.
  if (CS.Prover) {
    bool Proved = CS.Prover->prove(LhsT, RhsT);
    if (Proved && CS.TrustProver) {
      Verdict.InstancesChecked = Capped;
      if (Verdict.InstancesChecked >= CS.Options.MaxInstancesPerAxiom)
        CS.Report.Caveats.push_back(Verdict.Label +
                                    ": instance cap reached");
      return Verdict;
    }
  }

  // Checks instance \p Flat on the main engine. A normalization failure
  // adds its caveat and lets the sweep continue; a mismatch records the
  // counterexample and returns true to stop it.
  auto checkOnMain = [&](size_t Flat) -> bool {
    Substitution Sigma;
    size_t Rem = Flat;
    std::vector<size_t> Index(Vars.size());
    for (size_t I = 0; I != Vars.size(); ++I) {
      Index[I] = Rem % Choices[I]->size();
      Rem /= Choices[I]->size();
      Sigma.bind(Vars[I], (*Choices[I])[Index[I]]);
    }

    TermId Lhs = applySubstitution(CS.Ctx, LhsT, Sigma);
    TermId Rhs = applySubstitution(CS.Ctx, RhsT, Sigma);
    Result<TermId> LhsN = CS.Engine.normalize(Lhs);
    Result<TermId> RhsN = CS.Engine.normalize(Rhs);

    if (!LhsN || !RhsN) {
      CS.Report.Caveats.push_back(
          Verdict.Label + ": normalization failed on an instance: " +
          (!LhsN ? LhsN.error().message() : RhsN.error().message()));
      return false;
    }
    if (*LhsN != *RhsN) {
      Verdict.Holds = false;
      std::string Assignment;
      for (size_t I = 0; I != Vars.size(); ++I) {
        if (I)
          Assignment += ", ";
        Assignment += std::string(CS.Ctx.varName(Vars[I])) + " = " +
                      printTerm(CS.Ctx, (*Choices[I])[Index[I]]);
      }
      Verdict.Failure =
          CounterExample{Lhs, Rhs, *LhsN, *RhsN, std::move(Assignment)};
      return true;
    }
    return false;
  };

  if (CS.Driver && Capped <= CS.Options.Par.MaxFlatSpace) {
    // Workers classify their shard; the merge walks flagged instances in
    // ascending order on the main engine, which regenerates the exact
    // serial caveats, counterexample, and stop point. Flagged instances
    // are failures or normalization errors — rare — so re-running them
    // costs little.
    std::vector<uint8_t> Flagged = CS.Driver->map<uint8_t>(
        Capped, [&](ReplicaWorker &W, size_t Flat) -> uint8_t {
          if (!W.Engine)
            return 1;
          AlgebraContext &RCtx = W.Rep->context();
          Substitution Sigma;
          size_t Rem = Flat;
          for (size_t I = 0; I != Vars.size(); ++I) {
            TermId Value =
                W.Rep->mapTerm((*Choices[I])[Rem % Choices[I]->size()]);
            if (!Value.isValid())
              return 1;
            Sigma.bind(W.Rep->mapVar(Vars[I]), Value);
            Rem /= Choices[I]->size();
          }
          TermId MappedLhs = W.Rep->mapTerm(LhsT);
          TermId MappedRhs = W.Rep->mapTerm(RhsT);
          if (!MappedLhs.isValid() || !MappedRhs.isValid())
            return 1;
          TermId Lhs = applySubstitution(RCtx, MappedLhs, Sigma);
          TermId Rhs = applySubstitution(RCtx, MappedRhs, Sigma);
          Result<TermId> LhsN = W.Engine->normalize(Lhs);
          Result<TermId> RhsN = W.Engine->normalize(Rhs);
          if (!LhsN || !RhsN)
            return 1;
          return *LhsN != *RhsN ? 1 : 0;
        });
    Verdict.InstancesChecked = Capped;
    for (size_t Flat = 0; Flat != Capped; ++Flat) {
      if (!Flagged[Flat])
        continue;
      if (checkOnMain(Flat)) {
        Verdict.InstancesChecked = Flat + 1;
        break;
      }
    }
  } else {
    while (Verdict.InstancesChecked < Capped) {
      size_t Flat = Verdict.InstancesChecked++;
      if (checkOnMain(Flat))
        break;
    }
  }
  if (Verdict.InstancesChecked >= CS.Options.MaxInstancesPerAxiom)
    CS.Report.Caveats.push_back(Verdict.Label + ": instance cap reached");
  return Verdict;
}

/// Builds the rewrite system + engine + value domain shared by both
/// verification entry points. Returns false when nothing can be checked.
bool setUpCheck(AlgebraContext &Ctx, const Spec &Abstract,
                const std::vector<const Spec *> &RuleSources,
                const RepMapping &Mapping, const VerifyOptions &Options,
                std::optional<RewriteSystem> &System,
                std::optional<RewriteEngine> &Engine,
                std::optional<TermEnumerator> &Enumerator,
                std::unique_ptr<ParallelDriver<ReplicaWorker>> &Driver,
                std::vector<TermId> &RepValues, VerifyReport &Report) {
  auto SystemOrErr = RewriteSystem::buildChecked(Ctx, RuleSources);
  if (!SystemOrErr) {
    Report.AllHold = false;
    Report.Caveats.push_back("rule construction failed: " +
                             SystemOrErr.error().message());
    return false;
  }
  System.emplace(SystemOrErr.take());
  Engine.emplace(Ctx, *System, Options.Engine);
  Enumerator.emplace(Ctx, Options.Enum);
  Driver = makeReplicaDriver(Options.Par, Ctx, RuleSources, Options.Engine,
                             Options.Enum);

  RepValues = collectRepValues(Ctx, Abstract, Mapping, Options, *Engine,
                               *Enumerator, Report);
  Report.NumRepValues = RepValues.size();
  if (RepValues.empty()) {
    Report.AllHold = false;
    Report.Caveats.push_back("no representation values; nothing verified");
    return false;
  }
  return true;
}

/// Folds the main engine's and every worker engine's counters into the
/// report.
void aggregateEngineStats(VerifyReport &Report, RewriteEngine &Engine,
                          ParallelDriver<ReplicaWorker> *Driver,
                          const EqSatProver *Prover = nullptr) {
  Report.Engine = Engine.stats();
  if (Driver)
    for (ReplicaWorker *W : Driver->states())
      if (W->Engine)
        Report.Engine += W->Engine->stats();
  if (Prover) {
    EqSatProverStats PS = Prover->stats();
    Report.Engine.EGraphClasses += PS.Graph.Classes;
    Report.Engine.EGraphNodes += PS.Graph.Nodes;
    Report.Engine.EGraphMerges += PS.Graph.Merges;
    Report.Engine.EGraphRebuilds += PS.Graph.RebuildRounds;
  }
}

//===----------------------------------------------------------------------===//
// Definedness-obligation discharge
//===----------------------------------------------------------------------===//

/// One enclosing if-then-else condition on the path to a call site.
struct SiteGuard {
  TermId Cond;
  bool TakenThen;
};

/// Discharges the error-flow obligations of every lower-level operation
/// at every call site of the implementing specs: a site is safe when no
/// value the configured domain can supply lets it take the shape of the
/// callee's erroring case. Runs entirely on the calling thread, so the
/// verdicts are identical at any job count.
class ObligationDischarger {
public:
  ObligationDischarger(AlgebraContext &Ctx, const Spec &Abstract,
                       const std::vector<const Spec *> &RuleSources,
                       const RepMapping &Mapping,
                       const VerifyOptions &Options,
                       const RewriteSystem &System, VerifyReport &Report)
      : Ctx(Ctx), Abstract(Abstract), RuleSources(RuleSources),
        Mapping(Mapping), Options(Options), Report(Report),
        Probe(Ctx, System, probeOptions(Options.Engine)) {}

  void run() {
    // Split the workspace: hosts define the implementation map's image
    // or the abstraction function; lower specs supply the operations the
    // hosts call. The abstract spec is neither — its own error axioms
    // are what the equational sweep verifies.
    std::unordered_set<OpId> ImplOps;
    for (const auto &Entry : Mapping.OpMap)
      ImplOps.insert(Entry.second);
    if (Mapping.Phi.isValid())
      ImplOps.insert(Mapping.Phi);

    std::vector<const Spec *> Hosts, Lower;
    for (const Spec *S : RuleSources) {
      bool IsHost = false;
      for (OpId Op : S->operations())
        if (ImplOps.count(Op)) {
          IsHost = true;
          break;
        }
      if (IsHost) {
        Hosts.push_back(S);
        continue;
      }
      if (S == &Abstract || S->name() == Abstract.name())
        continue;
      Lower.push_back(S);
    }
    if (Hosts.empty())
      return;

    std::unordered_set<OpId> LowerOps;
    for (const Spec *S : Lower)
      for (OpId Op : S->definedOps(Ctx))
        LowerOps.insert(Op);

    Flow = analyzeErrorFlow(Ctx, RuleSources);
    for (const DefinednessObligation &O : Flow.Obligations)
      if (LowerOps.count(O.Op))
        ObsByOp[O.Op].push_back(&O);
    if (ObsByOp.empty())
      return;

    Heads = domainHeads();
    for (size_t I = 0; I != Heads.size(); ++I)
      HeadsDesc += (I ? ", " : "") + std::string(Ctx.opName(Heads[I]));

    for (const Spec *H : Hosts)
      for (const Axiom &Ax : H->axioms()) {
        std::vector<SiteGuard> Guards;
        walk(*H, Ax, Ax.Rhs, Guards);
      }

    unsigned AssumptionNumber = 0;
    for (ObligationVerdict &V : Out)
      if (V.Status == ObligationStatus::Assumed) {
        V.Note = "Assumption " + std::to_string(++AssumptionNumber) + ": " +
                 V.Note;
        Report.AllObligationsDischarged = false;
      }
    if (PartialMatch)
      Report.Caveats.push_back(
          "some obligation sites apply an operation to an unreduced "
          "defined-operation result; unification there is syntactic, so a "
          "clash at such a site is not a proof of safety");
    Report.Obligations = std::move(Out);
  }

private:
  static EngineOptions probeOptions(EngineOptions O) {
    // Obligation conditions and guards are small; a tight budget keeps a
    // divergent axiom set from stalling the pass (an unfinished
    // normalization just means "not refuted"). The caller's engine
    // choice (compiled vs interpreted) is kept.
    O.MaxSteps = 4096;
    O.MaxDepth = 512;
    return O;
  }

  /// The operation applied to fresh variables of its argument sorts.
  TermId freshApplication(OpId Op) {
    const OpInfo &Info = Ctx.op(Op);
    std::vector<SortId> ArgSorts(Info.ArgSorts.begin(), Info.ArgSorts.end());
    std::vector<TermId> Args;
    for (SortId S : ArgSorts)
      Args.push_back(Ctx.makeVar(Ctx.addVar("h", S)));
    return Ctx.makeOp(Op, Args);
  }

  /// Collects the constructor heads of the symbolic normal form of a
  /// generator image: if-then-else leaves contribute their heads, error
  /// leaves nothing, and anything unreduced makes the image unknown.
  void genImageHeads(TermId Normal, std::unordered_set<OpId> &HeadSet,
                     bool &Unknown) {
    const TermNode Node = Ctx.node(Normal);
    if (Node.Kind == TermKind::Error)
      return;
    if (Node.Kind != TermKind::Op) {
      Unknown = true;
      return;
    }
    const OpInfo &Info = Ctx.op(Node.Op);
    if (Info.Builtin == BuiltinOp::Ite) {
      auto Span = Ctx.children(Normal);
      std::vector<TermId> Kids(Span.begin(), Span.end());
      genImageHeads(Kids[1], HeadSet, Unknown);
      genImageHeads(Kids[2], HeadSet, Unknown);
      return;
    }
    if (Info.isConstructor()) {
      HeadSet.insert(Node.Op);
      return;
    }
    Unknown = true;
  }

  /// The representation-sort constructor heads the configured value
  /// domain can put under a representation variable.
  std::vector<OpId> domainHeads() {
    std::vector<OpId> All;
    for (OpId Ctor : Ctx.constructorsOf(Mapping.RepSort))
      All.push_back(Ctor);

    if (Options.Domain == ValueDomain::FreeTerms) {
      if (!Options.Invariant.isValid())
        return All;
      // Drop heads the invariant excludes wholesale (symbolically: the
      // guard normalizes to false for the head over fresh arguments).
      std::vector<OpId> Kept;
      for (OpId K : All) {
        TermId Guard =
            Ctx.makeOp(Options.Invariant, {freshApplication(K)});
        Result<TermId> Norm = Probe.normalize(Guard);
        if (Norm && *Norm == Ctx.falseTerm())
          continue;
        Kept.push_back(K);
      }
      return Kept;
    }

    // Reachable: heads are whatever the generator implementations can
    // produce, read off their symbolic normal forms. Any unreduced image
    // falls back to every constructor.
    std::unordered_set<OpId> HeadSet;
    bool Unknown = false;
    for (OpId Ctor : Abstract.constructorsOf(Ctx, Mapping.AbstractSort)) {
      auto It = Mapping.OpMap.find(Ctor);
      if (It == Mapping.OpMap.end())
        continue; // collectRepValues already caveats this.
      Result<TermId> Image = Probe.normalize(freshApplication(It->second));
      if (!Image) {
        Unknown = true;
        break;
      }
      genImageHeads(*Image, HeadSet, Unknown);
      if (Unknown)
        break;
    }
    if (Unknown)
      return All;
    std::vector<OpId> OutHeads(HeadSet.begin(), HeadSet.end());
    std::sort(OutHeads.begin(), OutHeads.end());
    return OutHeads;
  }

  /// Depth-first over a host axiom right-hand side, tracking the
  /// if-then-else path; every lower-level application is checked against
  /// its callee's obligations. Conditions are walked under the enclosing
  /// guards only: they evaluate before their own branch is chosen.
  void walk(const Spec &Host, const Axiom &Ax, TermId T,
            std::vector<SiteGuard> &Guards) {
    const TermNode Node = Ctx.node(T);
    if (Node.Kind != TermKind::Op)
      return;
    auto Span = Ctx.children(T);
    std::vector<TermId> Kids(Span.begin(), Span.end());
    const OpInfo &Info = Ctx.op(Node.Op);
    if (Info.Builtin == BuiltinOp::Ite) {
      walk(Host, Ax, Kids[0], Guards);
      Guards.push_back({Kids[0], true});
      walk(Host, Ax, Kids[1], Guards);
      Guards.back().TakenThen = false;
      walk(Host, Ax, Kids[2], Guards);
      Guards.pop_back();
      return;
    }
    bool IsDefined = Info.isDefined();
    for (TermId Kid : Kids)
      walk(Host, Ax, Kid, Guards);
    if (!IsDefined)
      return;
    auto It = ObsByOp.find(Node.Op);
    if (It == ObsByOp.end())
      return;
    for (const DefinednessObligation *O : It->second)
      checkSite(Host, Ax, T, *O, Guards);
  }

  /// True when any proper subterm of \p T is a defined-operation
  /// application (which blocks syntactic unification with a constructor
  /// pattern without proving a clash of values).
  bool hasDefinedOpBelow(TermId T, bool Root) {
    const TermNode Node = Ctx.node(T);
    if (Node.Kind != TermKind::Op)
      return false;
    if (!Root && Ctx.op(Node.Op).isDefined())
      return true;
    for (TermId Kid : Ctx.children(T))
      if (hasDefinedOpBelow(Kid, false))
        return true;
    return false;
  }

  /// True when some enclosing guard, instantiated by \p Sigma, normalizes
  /// to the branch-excluding value — the site is dead code under this
  /// instantiation.
  bool guardsRefuted(const std::vector<SiteGuard> &Guards,
                     const Substitution &Sigma) {
    for (const SiteGuard &G : Guards) {
      TermId Inst = applySubstitution(Ctx, G.Cond, Sigma);
      Result<TermId> Norm = Probe.normalize(Inst);
      if (!Norm)
        continue;
      if ((*Norm == Ctx.trueTerm() && !G.TakenThen) ||
          (*Norm == Ctx.falseTerm() && G.TakenThen))
        return true;
    }
    return false;
  }

  /// True when the instantiated error condition normalizes to false:
  /// every instance of the site misses the erroring case.
  bool conditionRefuted(TermId CaseCond, const Substitution &Sigma) {
    TermId Inst = applySubstitution(Ctx, CaseCond, Sigma);
    Result<TermId> Norm = Probe.normalize(Inst);
    return Norm && *Norm == Ctx.falseTerm();
  }

  /// The representation-sorted variables of \p Site, in first-occurrence
  /// order.
  std::vector<VarId> repVarsOf(TermId Site) {
    std::vector<VarId> Vars;
    std::unordered_set<VarId> Seen;
    collectVars(Ctx, Site, Vars, Seen);
    std::vector<VarId> Rep;
    for (VarId V : Vars)
      if (Ctx.var(V).Sort == Mapping.RepSort)
        Rep.push_back(V);
    return Rep;
  }

  /// True when substituting a \p Head -headed value for \p RepVar cannot
  /// reach the obligation's erroring case: the head clashes with the
  /// pattern, an enclosing guard is refuted, or the error condition
  /// normalizes to false.
  bool headSafe(TermId Site, const std::vector<SiteGuard> &Guards,
                const DefinednessObligation &O, VarId RepVar, OpId Head) {
    Substitution HeadSub;
    HeadSub.bind(RepVar, freshApplication(Head));
    TermId SiteH = applySubstitution(Ctx, Site, HeadSub);
    TermId Cond =
        O.ErrorCondition.isValid() ? O.ErrorCondition : Ctx.trueTerm();
    auto [CaseLhs, CaseCond] = renameRuleApart(Ctx, O.CaseLhs, Cond);
    std::optional<Substitution> Sigma = unifyTerms(Ctx, SiteH, CaseLhs);
    if (!Sigma)
      return true;
    std::vector<SiteGuard> GuardsH;
    for (const SiteGuard &G : Guards)
      GuardsH.push_back({applySubstitution(Ctx, G.Cond, HeadSub),
                         G.TakenThen});
    if (guardsRefuted(GuardsH, *Sigma))
      return true;
    return conditionRefuted(CaseCond, *Sigma);
  }

  /// Checks one application site against one obligation of its callee.
  void checkSite(const Spec &Host, const Axiom &Ax, TermId Site,
                 const DefinednessObligation &O,
                 const std::vector<SiteGuard> &Guards) {
    TermId Cond =
        O.ErrorCondition.isValid() ? O.ErrorCondition : Ctx.trueTerm();
    auto [CaseLhs, CaseCond] = renameRuleApart(Ctx, O.CaseLhs, Cond);
    std::optional<Substitution> Sigma = unifyTerms(Ctx, Site, CaseLhs);
    if (!Sigma) {
      // The site cannot take the shape of the erroring case. When a
      // defined operation blocks the unification the clash is syntactic
      // only; surfaced once as a caveat.
      if (!PartialMatch && hasDefinedOpBelow(Site, true))
        PartialMatch = true;
      return;
    }

    ObligationVerdict V;
    V.Callee = O.Op;
    V.CalleeSpec = O.SpecName;
    V.CaseLhs = O.CaseLhs;
    V.Condition = O.ErrorCondition;
    V.HostSpec = Host.name();
    V.HostAxiom = Ax.Number;
    V.Site = Site;

    if (guardsRefuted(Guards, *Sigma)) {
      V.Status = ObligationStatus::Discharged;
      V.Note = "unreachable: the enclosing guard rules the case out";
      record(std::move(V));
      return;
    }
    if (conditionRefuted(CaseCond, *Sigma)) {
      V.Status = ObligationStatus::Discharged;
      V.Note = "the error condition normalizes to false at this site";
      record(std::move(V));
      return;
    }

    std::vector<VarId> RepVars = repVarsOf(Site);
    std::string Unsafe;
    if (RepVars.empty()) {
      Unsafe = "the error condition was not refuted at this site";
    } else {
      for (VarId RepVar : RepVars) {
        for (OpId Head : Heads) {
          if (headSafe(Site, Guards, O, RepVar, Head))
            continue;
          Unsafe = "a " + std::string(Ctx.opName(Head)) +
                   "-headed value for " + std::string(Ctx.varName(RepVar)) +
                   " may trigger it";
          break;
        }
        if (!Unsafe.empty())
          break;
      }
    }
    if (Unsafe.empty()) {
      V.Status = ObligationStatus::Discharged;
      V.Note = Heads.empty()
                   ? "the value domain supplies no constructor heads"
                   : "refuted for every value head the domain supplies (" +
                         HeadsDesc + ")";
    } else {
      V.Status = ObligationStatus::Assumed;
      V.Note = std::move(Unsafe);
    }
    record(std::move(V));
  }

  /// Appends \p V, merging repeat visits of the same site (one term can
  /// occur on several if-then-else paths); the worse status wins.
  void record(ObligationVerdict V) {
    std::string Key = V.HostSpec + '#' + std::to_string(V.HostAxiom) + '#' +
                      std::to_string(V.Site.index()) + '#' +
                      std::to_string(V.Callee.index()) + '#' +
                      std::to_string(V.CaseLhs.index());
    auto It = Merge.find(Key);
    if (It == Merge.end()) {
      Merge.emplace(std::move(Key), Out.size());
      Out.push_back(std::move(V));
      return;
    }
    ObligationVerdict &Existing = Out[It->second];
    if (Existing.Status == ObligationStatus::Discharged &&
        V.Status == ObligationStatus::Assumed) {
      Existing.Status = V.Status;
      Existing.Note = std::move(V.Note);
    }
  }

  AlgebraContext &Ctx;
  const Spec &Abstract;
  const std::vector<const Spec *> &RuleSources;
  const RepMapping &Mapping;
  const VerifyOptions &Options;
  VerifyReport &Report;
  RewriteEngine Probe;
  ErrorFlowReport Flow;
  std::unordered_map<OpId, std::vector<const DefinednessObligation *>>
      ObsByOp;
  std::vector<OpId> Heads;
  std::string HeadsDesc;
  std::vector<ObligationVerdict> Out;
  std::unordered_map<std::string, size_t> Merge;
  bool PartialMatch = false;
};

/// Attempts the convergence certificate over the rule sources. When the
/// combined rule set is proven confluent and terminating, normal-form
/// comparison decides the equational theory: the report claims decidable
/// equality and checkEquation switches to full-fuel symbolic proofs with
/// pre-reduced sweeps. Certification runs on the calling thread and is
/// deterministic, so the verdict is identical at any job count.
/// \p EqSatGate receives ConvergenceReport::localJoinability — the
/// weaker license (no termination claim) the equality-saturation oracle
/// needs; the flagship Symboltable rule set passes it while failing the
/// full confluence proof on RETRIEVE_R's unorientable recursion.
void certifyDecidableEquality(AlgebraContext &Ctx,
                              const std::vector<const Spec *> &RuleSources,
                              const VerifyOptions &Options,
                              VerifyReport &Report, bool &EqSatGate) {
  EqSatGate = false;
  if (!Options.UseConvergence)
    return;
  ConvergenceOptions CO;
  CO.Engine = Options.Engine;
  CO.KeepCertificates = false;
  ConvergenceReport Conv = certifyConvergence(Ctx, RuleSources, CO);
  EqSatGate = Conv.localJoinability();
  if (!Conv.provenConfluent())
    return;
  Report.DecidableEquality = true;
  for (const std::string &Caveat : Conv.Caveats)
    Report.Caveats.push_back(Caveat);
}

/// Builds the equality-saturation prover when the options ask for one:
/// Auto needs the convergence gate, On builds an ungated observability
/// prover (counters only, no split search). Generator induction — and
/// the reachability invariants it derives — engages only for the
/// Reachable domain with every abstract constructor mapped, the exact
/// precondition under which the prover's variable assumptions describe
/// the swept value set.
std::optional<EqSatProver> makeProver(AlgebraContext &Ctx,
                                      const Spec &Abstract,
                                      const RepMapping &Mapping,
                                      const VerifyOptions &Options,
                                      const RewriteSystem &System,
                                      RewriteEngine &Engine, bool Gate,
                                      bool &TrustProver) {
  std::optional<EqSatProver> Prover;
  TrustProver = Gate;
  if (!Options.UseConvergence || Options.EGraph == EqSatMode::Off)
    return Prover;
  if (!Gate && Options.EGraph != EqSatMode::On)
    return Prover;
  EqSatOptions EO;
  if (!Gate)
    EO.MaxSplitDepth = 0; // observability run: saturation counters only
  Prover.emplace(Ctx, System, Engine, EO);
  if (Options.Domain == ValueDomain::Reachable) {
    std::vector<OpId> Gens;
    bool AllMapped = true;
    for (OpId Ctor : Abstract.constructorsOf(Ctx, Mapping.AbstractSort)) {
      auto It = Mapping.OpMap.find(Ctor);
      if (It == Mapping.OpMap.end()) {
        AllMapped = false;
        break;
      }
      Gens.push_back(It->second);
    }
    if (AllMapped && !Gens.empty())
      Prover->enableInduction(Mapping.RepSort, std::move(Gens));
  }
  return Prover;
}

/// Runs the obligation-discharge pass and folds its verdicts into the
/// report.
void dischargeObligations(AlgebraContext &Ctx, const Spec &Abstract,
                          const std::vector<const Spec *> &RuleSources,
                          const RepMapping &Mapping,
                          const VerifyOptions &Options,
                          const RewriteSystem &System,
                          VerifyReport &Report) {
  ObligationDischarger(Ctx, Abstract, RuleSources, Mapping, Options, System,
                       Report)
      .run();
}

} // namespace

VerifyReport algspec::verifyRepresentation(
    AlgebraContext &Ctx, const Spec &Abstract,
    const std::vector<const Spec *> &RuleSources, const RepMapping &Mapping,
    const VerifyOptions &Options) {
  VerifyReport Report;
  std::optional<RewriteSystem> System;
  std::optional<RewriteEngine> Engine;
  std::optional<TermEnumerator> Enumerator;
  std::vector<TermId> RepValues;
  std::unique_ptr<ParallelDriver<ReplicaWorker>> Driver;
  if (!setUpCheck(Ctx, Abstract, RuleSources, Mapping, Options, System,
                  Engine, Enumerator, Driver, RepValues, Report))
    return Report;

  bool Gate = false;
  certifyDecidableEquality(Ctx, RuleSources, Options, Report, Gate);
  bool TrustProver = false;
  std::optional<EqSatProver> Prover = makeProver(
      Ctx, Abstract, Mapping, Options, *System, *Engine, Gate, TrustProver);
  CheckState CS{Ctx,     *Engine,   *System, *Enumerator,
                Mapping, Options, RepValues, Report, Driver.get(),
                Prover ? &*Prover : nullptr, TrustProver};
  Translator Xlate(Ctx, Mapping);

  for (const Axiom &Ax : Abstract.axioms()) {
    TermId LhsT = Xlate.translate(Ax.Lhs);
    TermId RhsT = Xlate.translate(Ax.Rhs);
    if (Ctx.sortOf(Ax.Lhs) == Mapping.AbstractSort) {
      LhsT = Ctx.makeOp(Mapping.Phi, {LhsT});
      RhsT = Ctx.makeOp(Mapping.Phi, {RhsT});
    }
    AxiomVerdict Verdict = checkEquation(
        CS, "axiom " + std::to_string(Ax.Number), Ax.Number, LhsT, RhsT);
    Report.AllHold &= Verdict.Holds;
    Report.Verdicts.push_back(std::move(Verdict));
  }
  dischargeObligations(Ctx, Abstract, RuleSources, Mapping, Options, *System,
                       Report);
  aggregateEngineStats(Report, *Engine, Driver.get(),
                       Prover ? &*Prover : nullptr);
  return Report;
}

VerifyReport algspec::verifyHomomorphism(
    AlgebraContext &Ctx, const Spec &Abstract,
    const std::vector<const Spec *> &RuleSources, const RepMapping &Mapping,
    const VerifyOptions &Options) {
  VerifyReport Report;
  std::optional<RewriteSystem> System;
  std::optional<RewriteEngine> Engine;
  std::optional<TermEnumerator> Enumerator;
  std::vector<TermId> RepValues;
  std::unique_ptr<ParallelDriver<ReplicaWorker>> Driver;
  if (!setUpCheck(Ctx, Abstract, RuleSources, Mapping, Options, System,
                  Engine, Enumerator, Driver, RepValues, Report))
    return Report;

  bool Gate = false;
  certifyDecidableEquality(Ctx, RuleSources, Options, Report, Gate);
  bool TrustProver = false;
  std::optional<EqSatProver> Prover = makeProver(
      Ctx, Abstract, Mapping, Options, *System, *Engine, Gate, TrustProver);
  CheckState CS{Ctx,     *Engine,   *System, *Enumerator,
                Mapping, Options, RepValues, Report, Driver.get(),
                Prover ? &*Prover : nullptr, TrustProver};

  // Deterministic obligation order: follow the spec's operation list.
  unsigned Number = 0;
  for (OpId AbstractOp : Abstract.operations()) {
    auto It = Mapping.OpMap.find(AbstractOp);
    if (It == Mapping.OpMap.end())
      continue;
    OpId ImplOp = It->second;
    const OpInfo &Info = Ctx.op(AbstractOp);

    // Fresh variables: abstract-sorted positions get representation
    // variables (used raw on the impl side, Phi-wrapped on the abstract
    // side); every other position shares one variable across both sides.
    std::vector<TermId> ImplArgs, AbsArgs;
    for (SortId ArgSort : Info.ArgSorts) {
      if (ArgSort == Mapping.AbstractSort) {
        TermId RepVar = Ctx.makeVar(Ctx.addVar("v", Mapping.RepSort));
        ImplArgs.push_back(RepVar);
        AbsArgs.push_back(Ctx.makeOp(Mapping.Phi, {RepVar}));
      } else {
        TermId Var = Ctx.makeVar(Ctx.addVar("a", ArgSort));
        ImplArgs.push_back(Var);
        AbsArgs.push_back(Var);
      }
    }
    TermId ImplSide = Ctx.makeOp(ImplOp, ImplArgs);
    TermId AbsSide = Ctx.makeOp(AbstractOp, AbsArgs);
    if (Info.ResultSort == Mapping.AbstractSort)
      ImplSide = Ctx.makeOp(Mapping.Phi, {ImplSide});

    ++Number;
    AxiomVerdict Verdict = checkEquation(
        CS,
        "homomorphism for " + std::string(Ctx.opName(AbstractOp)),
        Number, ImplSide, AbsSide);
    Report.AllHold &= Verdict.Holds;
    Report.Verdicts.push_back(std::move(Verdict));
  }
  dischargeObligations(Ctx, Abstract, RuleSources, Mapping, Options, *System,
                       Report);
  aggregateEngineStats(Report, *Engine, Driver.get(),
                       Prover ? &*Prover : nullptr);
  return Report;
}

//===----------------------------------------------------------------------===//
// The paper's Symboltable representation
//===----------------------------------------------------------------------===//

Result<SymboltableRep> algspec::buildSymboltableRep(AlgebraContext &Ctx) {
  if (!Ctx.lookupSort("Symboltable").isValid() ||
      !Ctx.lookupSort("Stack").isValid())
    return makeError("load SymboltableAlg and StackArrayAlg before "
                     "building the representation");

  auto Parsed =
      specs::load(Ctx, specs::SymboltableImplAlg, "symboltable_impl.alg");
  if (!Parsed)
    return Parsed.error();

  SymboltableRep Rep;
  Rep.ImplSpecs = Parsed.take();

  Rep.Mapping.AbstractSort = Ctx.lookupSort("Symboltable");
  Rep.Mapping.RepSort = Ctx.lookupSort("Stack");
  Rep.Mapping.Phi = Ctx.lookupOp("PHI");

  // Abstract names like ADD may be overloaded in a shared context (the
  // paper reuses ADD for Queue); pick the overload that involves the
  // abstract sort.
  auto lookupAbstract = [&](const char *Name) -> OpId {
    for (OpId Op : Ctx.lookupOps(Name)) {
      const OpInfo &Info = Ctx.op(Op);
      if (Info.ResultSort == Rep.Mapping.AbstractSort)
        return Op;
      for (SortId Arg : Info.ArgSorts)
        if (Arg == Rep.Mapping.AbstractSort)
          return Op;
    }
    return OpId();
  };
  auto mapOp = [&](const char *AbstractName,
                   const char *ImplName) -> bool {
    OpId A = lookupAbstract(AbstractName);
    OpId I = Ctx.lookupOp(ImplName);
    if (!A.isValid() || !I.isValid())
      return false;
    Rep.Mapping.OpMap.emplace(A, I);
    return true;
  };
  if (!mapOp("INIT", "INIT_R") || !mapOp("ENTERBLOCK", "ENTERBLOCK_R") ||
      !mapOp("LEAVEBLOCK", "LEAVEBLOCK_R") || !mapOp("ADD", "ADD_R") ||
      !mapOp("IS_INBLOCK?", "IS_INBLOCK_R?") ||
      !mapOp("RETRIEVE", "RETRIEVE_R"))
    return makeError("missing abstract or implementation operation while "
                     "building the Symboltable representation");
  return Rep;
}
