//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation-correctness verification (paper, section 4).
///
/// A representation of abstract type A consists of (i) an interpretation
/// of A's operations over a concrete type (the implementation map, given
/// as a spec defining one impl operation per abstract operation) and (ii)
/// an abstraction function Φ mapping representation values to abstract
/// values (also given as a spec). Correctness means every abstract axiom
/// holds in the representation:
///
///   for every relation f(x*) = z derived from A's axioms,
///     (a) Φ(f'(x*)) = Φ(z')  when f yields the abstract type,
///     (b) f'(x*) = z'        otherwise,
///
/// for all legal assignments to the free variables. The paper proves this
/// by hand (and cites Musser's mechanical proof); this module checks it by
/// *bounded generator induction*: abstract-sorted variables range over
/// representation values, other variables over enumerated ground values,
/// and both sides are normalized and compared for every assignment.
///
/// Representation values come from one of two domains:
///  - **Reachable**: values produced by sequences of the implementation's
///    own generators (INIT', ENTERBLOCK', ADD') — the paper's conditional
///    correctness, where the enclosing program is assumed to respect the
///    type boundary;
///  - **FreeTerms**: all ground constructor terms of the representation
///    sort, optionally filtered by a representation invariant. Without a
///    guard this domain contains junk like a block-less NEWSTACK and
///    exposes exactly the failure Assumption 1 exists to rule out.
///
/// Beyond the equational sweep, the verifier runs an *obligation
/// discharge* pass: the error-flow analysis (check/ErrorFlow.h) infers a
/// definedness precondition for every lower-level operation the
/// implementation calls, and each call site inside an implementing axiom
/// is checked against it — by unification with the erroring case, guard
/// refutation along the enclosing if-then-else path, and a per-
/// constructor-head analysis of what the chosen value domain can supply.
/// Sites the pass cannot discharge become named assumptions in the
/// report (the paper's Assumption 1 is the Symboltable instance), so a
/// verification verdict always states what it is conditional on.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_VERIFY_REPVERIFIER_H
#define ALGSPEC_VERIFY_REPVERIFIER_H

#include "ast/Ids.h"
#include "check/TermEnumerator.h"
#include "egraph/EqSat.h"
#include "rewrite/Engine.h"
#include "support/Parallel.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;

/// How abstract-sorted variables are instantiated.
enum class ValueDomain {
  Reachable, ///< Generator-induction over impl-generated values.
  FreeTerms, ///< All constructor terms of the representation sort.
};

/// Static description of one representation.
struct RepMapping {
  SortId AbstractSort; ///< e.g. Symboltable
  SortId RepSort;      ///< e.g. Stack
  /// Abstract operation -> implementing operation (INIT -> INIT_R, ...).
  std::unordered_map<OpId, OpId> OpMap;
  /// The abstraction function Φ : RepSort -> AbstractSort.
  OpId Phi;
};

/// Verification tunables.
struct VerifyOptions {
  /// Attempt a symbolic proof first: normalize both sides as *open*
  /// terms and accept syntactic equality of the normal forms as an
  /// unbounded proof of the obligation (sound; incompleteness just
  /// falls through to the bounded sweep).
  bool TrySymbolic = true;
  /// Attempt a convergence certificate (check/Convergence.h) over the
  /// rule sources first. When the combined rule set is proven confluent
  /// and terminating, equality of normal forms *decides* every
  /// obligation instance: the symbolic attempt runs with full fuel
  /// instead of its defensive budget, and the open axiom sides are
  /// pre-reduced once before the instance sweep (sound because
  /// nf(sigma(nf(s))) = nf(sigma(s)) under convergence). When the
  /// certificate does not hold the verifier behaves exactly as before.
  bool UseConvergence = true;
  /// Consult the equality-saturation oracle (src/egraph/) before the
  /// instance sweep: obligations the e-graph discharges skip their sweep
  /// entirely. Auto consults it only when the convergence certifier's
  /// local-joinability gate licenses its verdicts
  /// (ConvergenceReport::localJoinability); On additionally runs the
  /// saturation for its counters when the gate fails (verdicts still
  /// require the gate); Off never builds a prover. Requires
  /// UseConvergence (the gate is the certifier's by-product). The
  /// report is byte-identical across modes whenever every obligation
  /// holds (pinned by the e-graph differential tests).
  EqSatMode EGraph = EqSatMode::Auto;
  ValueDomain Domain = ValueDomain::Reachable;
  /// Reachable: maximum generator applications per value.
  /// FreeTerms: maximum constructor-term depth.
  unsigned Depth = 4;
  /// FreeTerms only: candidate representation values v are kept iff
  /// normalize(Invariant(v)) == true. Invalid OpId disables filtering.
  /// The operation must be RepSort -> Bool (the representation
  /// invariant; for the paper's Assumption 1 it is "has at least one
  /// block", i.e. not(IS_NEWSTACK?(stk))).
  OpId Invariant;
  /// Cap on representation values considered (with a caveat when hit).
  size_t MaxValues = 4000;
  /// Cap on assignments per axiom (with a caveat when hit).
  size_t MaxInstancesPerAxiom = 200000;
  EnumeratorOptions Enum;
  EngineOptions Engine;
  /// Degree of parallelism for the instance sweeps. Value collection and
  /// the symbolic attempts stay on the calling thread; the report is
  /// byte-identical to the serial run at any job count.
  ParallelOptions Par;
};

/// One failed assignment.
struct CounterExample {
  /// The instantiated (translated) axiom sides and their normal forms.
  TermId Lhs, Rhs;
  TermId LhsNormal, RhsNormal;
  /// Human-readable variable assignment.
  std::string Assignment;
};

/// Verdict for one proof obligation (an abstract axiom, or one
/// homomorphism condition).
struct AxiomVerdict {
  unsigned AxiomNumber = 0;
  /// Display label; "axiom N" for axiom obligations, "Φ∘f' = f∘Φ for
  /// OP" for homomorphism obligations.
  std::string Label;
  bool Holds = true;
  /// True when the obligation was discharged *symbolically*: both open
  /// sides normalized to the identical term, so the equation holds for
  /// every assignment, with no depth bound (paper section 5: "the
  /// operations of the algebra may be interpreted symbolically"). When
  /// false, Holds rests on the bounded instance sweep.
  bool ProvedSymbolically = false;
  uint64_t InstancesChecked = 0;
  std::optional<CounterExample> Failure;
};

/// Whether one lower-level definedness obligation at one call site was
/// discharged statically or remains an assumption the verdict is
/// conditional on.
enum class ObligationStatus {
  Discharged, ///< No value the domain supplies can reach the erroring case.
  Assumed,    ///< Some supplied value may trigger it; named assumption.
};

/// One lower-level definedness obligation instantiated at one call site
/// of an implementing axiom: which callee case can error, where it is
/// applied, and whether the verifier discharged it.
struct ObligationVerdict {
  OpId Callee;            ///< The lower-level operation applied.
  std::string CalleeSpec; ///< Spec defining the callee.
  TermId CaseLhs;         ///< The callee's erroring case pattern.
  /// Exact error condition over the case's variables; invalid when the
  /// case errors unconditionally.
  TermId Condition;
  std::string HostSpec;   ///< Implementing spec containing the site.
  unsigned HostAxiom = 0; ///< Axiom number within the host spec.
  TermId Site;            ///< The call site inside the host axiom RHS.
  ObligationStatus Status = ObligationStatus::Assumed;
  /// Why the site is safe, or what exactly is being assumed.
  std::string Note;

  std::string render(const AlgebraContext &Ctx) const;
};

/// Outcome of a verification run.
struct VerifyReport {
  bool AllHold = true;
  std::vector<AxiomVerdict> Verdicts;
  /// Definedness obligations at every lower-level call site of the
  /// implementation, each discharged or assumed. Computed on the calling
  /// thread; deterministic at any job count.
  std::vector<ObligationVerdict> Obligations;
  bool AllObligationsDischarged = true;
  /// True when the rule sources carry a convergence certificate: normal
  /// forms are canonical, so normal-form comparison is a decision
  /// procedure for the equational theory and every symbolically proved
  /// verdict is a proof (not merely a lucky join).
  bool DecidableEquality = false;
  std::vector<std::string> Caveats;
  size_t NumRepValues = 0;
  /// Rewrite-engine counters aggregated over the main engine and every
  /// worker replica; not part of the verdict and not deterministic
  /// across worker counts.
  EngineStats Engine;

  std::string render(const AlgebraContext &Ctx) const;
};

/// Verifies that the representation described by \p Mapping satisfies
/// every axiom of \p Abstract. \p RuleSources must contain every spec
/// whose axioms execute the check: the concrete specs, the implementation
/// spec, the Φ spec, and (for comparing abstract normal forms) the
/// abstract spec itself.
VerifyReport verifyRepresentation(AlgebraContext &Ctx, const Spec &Abstract,
                                  const std::vector<const Spec *> &RuleSources,
                                  const RepMapping &Mapping,
                                  const VerifyOptions &Options);

/// Checks the abstraction-function homomorphism conditions directly:
/// for every mapped operation f with implementation f', representation
/// values v and ground non-abstract arguments a*,
///
///   Φ(f'(..v.., a*)) = f(..Φ(v).., a*)   when f yields the abstract sort,
///   f'(..v.., a*)    = f(..Φ(v).., a*)   otherwise.
///
/// This is stronger than \c verifyRepresentation for specs whose axioms
/// reduce both sides to the same representation value before Φ ever
/// applies (it pins Φ itself, catching degenerate abstraction
/// functions). The paper's procedure corresponds to the axiom check;
/// the homomorphism check is the classical Hoare-style strengthening.
VerifyReport verifyHomomorphism(AlgebraContext &Ctx, const Spec &Abstract,
                                const std::vector<const Spec *> &RuleSources,
                                const RepMapping &Mapping,
                                const VerifyOptions &Options);

/// Builds the paper's Symboltable-as-Stack-of-Arrays representation: the
/// implementation spec (INIT_R, ENTERBLOCK_R, ...) and Φ, both parsed
/// from embedded text, plus the RepMapping. Requires SymboltableAlg and
/// StackArrayAlg to be loaded into \p Ctx already.
struct SymboltableRep {
  std::vector<Spec> ImplSpecs; ///< {implementation spec, Φ spec}
  RepMapping Mapping;
};
Result<SymboltableRep> buildSymboltableRep(AlgebraContext &Ctx);

} // namespace algspec

#endif // ALGSPEC_VERIFY_REPVERIFIER_H
