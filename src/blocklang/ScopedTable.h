//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbol-table boundary of the BlockLang front end.
///
/// Sema is written against this interface alone — the paper's
/// information-hiding discipline. Backends provided:
///
///  - ConcreteScopedTable<TableT>: any of the three C++ representations
///    (SymbolTable, ListSymbolTable, FlatSymbolTable).
///  - KnowsScopedTable: the knows-list C++ representation.
///  - SpecScopedTable: *no implementation at all* — operations are
///    interpreted symbolically against the Symboltable specification
///    (paper section 5: "the lack of an implementation can be made
///    completely transparent to the user").
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BLOCKLANG_SCOPEDTABLE_H
#define ALGSPEC_BLOCKLANG_SCOPEDTABLE_H

#include "adt/KnowsSymbolTable.h"
#include "blocklang/Ast.h"
#include "interp/Session.h"
#include "specs/BuiltinSpecs.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {
namespace blocklang {

/// What the scope/type checker needs from a symbol table — the abstract
/// type's signature, nothing else.
class ScopedTable {
public:
  virtual ~ScopedTable() = default;

  /// ENTERBLOCK. \p Knows is the block's knows-list; backends for the
  /// plain dialect ignore it.
  virtual void enterBlock(const std::vector<std::string> &Knows) = 0;
  /// LEAVEBLOCK; false on the outermost scope (mismatched 'end').
  virtual bool leaveBlock() = 0;
  /// ADD.
  virtual void add(std::string_view Id, Type T) = 0;
  /// IS_INBLOCK?.
  virtual bool isInBlock(std::string_view Id) = 0;
  /// RETRIEVE; nullopt when invisible/undeclared.
  virtual std::optional<Type> retrieve(std::string_view Id) = 0;
};

/// Adapter over any of the concrete plain-dialect representations.
template <typename TableT> class ConcreteScopedTable final
    : public ScopedTable {
public:
  void enterBlock(const std::vector<std::string> &) override {
    Table.enterBlock();
  }
  bool leaveBlock() override { return Table.leaveBlock(); }
  void add(std::string_view Id, Type T) override { Table.add(Id, T); }
  bool isInBlock(std::string_view Id) override {
    return Table.isInBlock(Id);
  }
  std::optional<Type> retrieve(std::string_view Id) override {
    return Table.retrieve(Id);
  }

  TableT &table() { return Table; }

private:
  TableT Table;
};

/// Adapter over the knows-list representation (extended dialect).
class KnowsScopedTable final : public ScopedTable {
public:
  void enterBlock(const std::vector<std::string> &Knows) override {
    adt::KnowsList List;
    for (const std::string &Id : Knows)
      List.append(Id);
    Table.enterBlock(std::move(List));
  }
  bool leaveBlock() override { return Table.leaveBlock(); }
  void add(std::string_view Id, Type T) override { Table.add(Id, T); }
  bool isInBlock(std::string_view Id) override {
    return Table.isInBlock(Id);
  }
  std::optional<Type> retrieve(std::string_view Id) override {
    return Table.retrieve(Id);
  }

private:
  adt::KnowsSymbolTable<Type> Table;
};

/// The specification-backed table for the *knows* dialect: the adapted
/// Symboltable axioms (ENTERBLOCK takes a Knowlist) interpreted
/// symbolically. Mirrors how the concrete KnowsScopedTable relates to
/// the plain ConcreteScopedTable: only ENTERBLOCK changed.
class SpecKnowsScopedTable final : public ScopedTable {
public:
  static Result<std::unique_ptr<SpecKnowsScopedTable>> create();

  ~SpecKnowsScopedTable() override;

  void enterBlock(const std::vector<std::string> &Knows) override;
  bool leaveBlock() override;
  void add(std::string_view Id, Type T) override;
  bool isInBlock(std::string_view Id) override;
  std::optional<Type> retrieve(std::string_view Id) override;

private:
  SpecKnowsScopedTable() = default;

  std::unique_ptr<AlgebraContext> Ctx;
  std::vector<Spec> Specs;
  std::unique_ptr<Session> Sess;
};

/// The specification-backed table: every operation is term rewriting
/// over the Symboltable axioms. Types travel as the atoms 'int / 'bool.
class SpecScopedTable final : public ScopedTable {
public:
  /// Fails only if the embedded spec fails to load (programming error).
  static Result<std::unique_ptr<SpecScopedTable>> create();

  ~SpecScopedTable() override; // Out of line: AlgebraContext is opaque here.

  void enterBlock(const std::vector<std::string> &Knows) override;
  bool leaveBlock() override;
  void add(std::string_view Id, Type T) override;
  bool isInBlock(std::string_view Id) override;
  std::optional<Type> retrieve(std::string_view Id) override;

  /// Rewrite-engine statistics — the cost of running without an
  /// implementation (experiment E8).
  const EngineStats &stats() const { return Sess->stats(); }

private:
  SpecScopedTable() = default;

  std::unique_ptr<AlgebraContext> Ctx;
  Spec TableSpec;
  std::unique_ptr<Session> Sess;
};

} // namespace blocklang
} // namespace algspec

#endif // ALGSPEC_BLOCKLANG_SCOPEDTABLE_H
