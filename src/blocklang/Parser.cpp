//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blocklang/Parser.h"

#include "blocklang/Lexer.h"
#include "support/SourceMgr.h"

#include <string>

using namespace algspec;
using namespace algspec::blocklang;

namespace {

class ParserImpl {
public:
  ParserImpl(const SourceMgr &SM, DiagnosticEngine &Diags, Dialect D)
      : Diags(Diags), D(D), Lex(SM) {}

  Program parse() {
    Program P;
    if (!Lex.peek().is(TokKind::KwBegin)) {
      Diags.error(Lex.peek().Loc, "a program is one top-level block; "
                                  "expected 'begin'");
      return P;
    }
    P.Top = parseBlock();
    if (P.Top && !Lex.peek().is(TokKind::Eof))
      Diags.error(Lex.peek().Loc, "trailing input after the top-level "
                                  "block");
    return P;
  }

private:
  bool expect(TokKind Kind, const char *Context) {
    const Tok &T = Lex.peek();
    if (T.is(Kind)) {
      Lex.next();
      return true;
    }
    Diags.error(T.Loc, std::string("expected ") + tokKindName(Kind) + " " +
                           Context + ", found " + tokKindName(T.Kind));
    return false;
  }

  std::unique_ptr<Block> parseBlock() {
    auto B = std::make_unique<Block>();
    B->Loc = Lex.peek().Loc;
    if (!expect(TokKind::KwBegin, "to open a block"))
      return nullptr;

    if (Lex.peek().is(TokKind::KwKnows)) {
      SourceLoc KnowsLoc = Lex.next().Loc;
      B->HasKnowsClause = true;
      if (D == Dialect::Plain)
        Diags.error(KnowsLoc,
                    "knows-lists are not part of the plain dialect");
      while (true) {
        const Tok &Name = Lex.peek();
        if (!expect(TokKind::Ident, "in knows-list"))
          return nullptr;
        B->Knows.emplace_back(Name.Text);
        if (!Lex.peek().is(TokKind::Comma))
          break;
        Lex.next();
      }
      if (!expect(TokKind::Semi, "after knows-list"))
        return nullptr;
    }

    while (!Lex.peek().is(TokKind::KwEnd) &&
           !Lex.peek().is(TokKind::Eof)) {
      if (!parseItem(*B))
        return nullptr;
    }
    if (!expect(TokKind::KwEnd, "to close a block"))
      return nullptr;
    return B;
  }

  bool parseItem(Block &B) {
    const Tok &T = Lex.peek();
    switch (T.Kind) {
    case TokKind::KwVar:
      return parseDecl(B);
    case TokKind::Ident:
      return parseAssign(B);
    case TokKind::KwIf:
      return parseIf(B);
    case TokKind::KwWhile:
      return parseWhile(B);
    case TokKind::KwBegin: {
      Stmt S;
      S.K = Stmt::Kind::Nested;
      S.Loc = T.Loc;
      S.Nested = parseBlock();
      if (!S.Nested)
        return false;
      B.Body.push_back(std::move(S));
      return expect(TokKind::Semi, "after a nested block");
    }
    default:
      Diags.error(T.Loc, std::string("expected a declaration, assignment, "
                                     "or block, found ") +
                             tokKindName(T.Kind));
      return false;
    }
  }

  bool parseDecl(Block &B) {
    Stmt S;
    S.K = Stmt::Kind::Decl;
    S.Loc = Lex.next().Loc; // 'var'
    const Tok &Name = Lex.peek();
    if (!expect(TokKind::Ident, "after 'var'"))
      return false;
    S.Name = std::string(Name.Text);
    if (!expect(TokKind::Colon, "after variable name"))
      return false;
    const Tok &Ty = Lex.peek();
    if (Ty.is(TokKind::KwInt))
      S.DeclType = Type::Int;
    else if (Ty.is(TokKind::KwBool))
      S.DeclType = Type::Bool;
    else {
      Diags.error(Ty.Loc, std::string("expected a type, found ") +
                              tokKindName(Ty.Kind));
      return false;
    }
    Lex.next();
    if (!expect(TokKind::Semi, "after declaration"))
      return false;
    B.Body.push_back(std::move(S));
    return true;
  }

  /// Parses statements until one of the given terminator kinds; the
  /// terminator itself is not consumed.
  bool parseItemsUntil(std::vector<Stmt> &Body,
                       std::initializer_list<TokKind> Terminators) {
    while (true) {
      const Tok &T = Lex.peek();
      for (TokKind K : Terminators)
        if (T.is(K))
          return true;
      if (T.is(TokKind::Eof)) {
        Diags.error(T.Loc, "unterminated statement body");
        return false;
      }
      Block Scratch;
      if (!parseItem(Scratch))
        return false;
      for (Stmt &S : Scratch.Body)
        Body.push_back(std::move(S));
    }
  }

  bool parseIf(Block &B) {
    Stmt S;
    S.K = Stmt::Kind::If;
    S.Loc = Lex.next().Loc; // 'if'
    S.Value = parseExpr();
    if (!S.Value)
      return false;
    if (!expect(TokKind::KwThen, "after if condition"))
      return false;
    if (!parseItemsUntil(S.ThenBody, {TokKind::KwElse, TokKind::KwEnd}))
      return false;
    if (Lex.peek().is(TokKind::KwElse)) {
      Lex.next();
      if (!parseItemsUntil(S.ElseBody, {TokKind::KwEnd}))
        return false;
    }
    if (!expect(TokKind::KwEnd, "to close 'if'") ||
        !expect(TokKind::Semi, "after 'if' statement"))
      return false;
    B.Body.push_back(std::move(S));
    return true;
  }

  bool parseWhile(Block &B) {
    Stmt S;
    S.K = Stmt::Kind::While;
    S.Loc = Lex.next().Loc; // 'while'
    S.Value = parseExpr();
    if (!S.Value)
      return false;
    if (!expect(TokKind::KwDo, "after while condition"))
      return false;
    if (!parseItemsUntil(S.ThenBody, {TokKind::KwEnd}))
      return false;
    if (!expect(TokKind::KwEnd, "to close 'while'") ||
        !expect(TokKind::Semi, "after 'while' statement"))
      return false;
    B.Body.push_back(std::move(S));
    return true;
  }

  bool parseAssign(Block &B) {
    Stmt S;
    S.K = Stmt::Kind::Assign;
    const Tok &Name = Lex.next();
    S.Loc = Name.Loc;
    S.Name = std::string(Name.Text);
    if (!expect(TokKind::Assign, "in assignment"))
      return false;
    S.Value = parseExpr();
    if (!S.Value)
      return false;
    if (!expect(TokKind::Semi, "after assignment"))
      return false;
    B.Body.push_back(std::move(S));
    return true;
  }

  std::unique_ptr<Expr> parseExpr() {
    std::unique_ptr<Expr> Lhs = parsePrimary();
    if (!Lhs)
      return nullptr;
    while (true) {
      Expr::BinOp Op;
      switch (Lex.peek().Kind) {
      case TokKind::Plus:
        Op = Expr::BinOp::Add;
        break;
      case TokKind::Less:
        Op = Expr::BinOp::Less;
        break;
      case TokKind::EqEq:
        Op = Expr::BinOp::Equal;
        break;
      default:
        return Lhs;
      }
      SourceLoc OpLoc = Lex.next().Loc;
      std::unique_ptr<Expr> Rhs = parsePrimary();
      if (!Rhs)
        return nullptr;
      auto Node = std::make_unique<Expr>();
      Node->K = Expr::Kind::Binary;
      Node->Loc = OpLoc;
      Node->Op = Op;
      Node->Lhs = std::move(Lhs);
      Node->Rhs = std::move(Rhs);
      Lhs = std::move(Node);
    }
  }

  std::unique_ptr<Expr> parsePrimary() {
    const Tok &T = Lex.peek();
    auto Node = std::make_unique<Expr>();
    Node->Loc = T.Loc;
    switch (T.Kind) {
    case TokKind::IntLit:
      Node->K = Expr::Kind::IntLit;
      Node->IntValue = T.IntValue;
      Lex.next();
      return Node;
    case TokKind::KwTrue:
    case TokKind::KwFalse:
      Node->K = Expr::Kind::BoolLit;
      Node->BoolValue = T.is(TokKind::KwTrue);
      Lex.next();
      return Node;
    case TokKind::Ident:
      Node->K = Expr::Kind::VarRef;
      Node->Name = std::string(T.Text);
      Lex.next();
      return Node;
    case TokKind::LParen: {
      Lex.next();
      std::unique_ptr<Expr> Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!expect(TokKind::RParen, "after parenthesized expression"))
        return nullptr;
      return Inner;
    }
    default:
      Diags.error(T.Loc, std::string("expected an expression, found ") +
                             tokKindName(T.Kind));
      return nullptr;
    }
  }

  DiagnosticEngine &Diags;
  Dialect D;
  Lexer Lex;
};

} // namespace

Program blocklang::parseProgram(const SourceMgr &SM, DiagnosticEngine &Diags,
                                Dialect D) {
  ParserImpl P(SM, Diags, D);
  return P.parse();
}
