//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for BlockLang, the small block-structured language whose
/// compiler front end is the paper's running application.
///
/// Grammar (plain dialect):
///
///   program := block
///   block   := 'begin' [knows] item* 'end'
///   knows   := 'knows' IDENT (',' IDENT)* ';'        (extended dialect)
///   item    := 'var' IDENT ':' type ';'
///            | IDENT ':=' expr ';'
///            | 'if' expr 'then' item* ['else' item*] 'end' ';'
///            | 'while' expr 'do' item* 'end' ';'
///            | block ';'
///   type    := 'int' | 'bool'
///   expr    := prim (('+' | '<' | '==') prim)*       (left-assoc)
///   prim    := IDENT | INT | 'true' | 'false' | '(' expr ')'
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BLOCKLANG_LEXER_H
#define ALGSPEC_BLOCKLANG_LEXER_H

#include "support/SourceLoc.h"
#include "support/SourceMgr.h"

#include <cstdint>
#include <string_view>

namespace algspec {
namespace blocklang {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  KwBegin,
  KwEnd,
  KwVar,
  KwKnows,
  KwInt,
  KwBool,
  KwTrue,
  KwFalse,
  KwIf,
  KwThen,
  KwElse,
  KwWhile,
  KwDo,
  Assign, ///< :=
  Colon,
  Semi,
  Comma,
  Plus,
  Less,
  EqEq, ///< ==
  LParen,
  RParen,
  Unknown,
};

struct Tok {
  TokKind Kind = TokKind::Eof;
  std::string_view Text;
  SourceLoc Loc;
  int64_t IntValue = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// Single-pass lexer; `//` starts a line comment.
class Lexer {
public:
  explicit Lexer(const SourceMgr &SM);

  Tok next();
  const Tok &peek();

private:
  Tok lexImpl();

  const SourceMgr &SM;
  std::string_view Text;
  size_t Pos = 0;
  Tok Lookahead;
  bool HasLookahead = false;
};

const char *tokKindName(TokKind Kind);

} // namespace blocklang
} // namespace algspec

#endif // ALGSPEC_BLOCKLANG_LEXER_H
