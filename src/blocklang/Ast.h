//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BlockLang abstract syntax tree.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BLOCKLANG_AST_H
#define ALGSPEC_BLOCKLANG_AST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace algspec {
namespace blocklang {

/// BlockLang's two types.
enum class Type : uint8_t { Int, Bool };

inline const char *typeName(Type T) {
  return T == Type::Int ? "int" : "bool";
}

/// Expressions.
struct Expr {
  enum class Kind : uint8_t { IntLit, BoolLit, VarRef, Binary };
  enum class BinOp : uint8_t { Add, Less, Equal };

  Kind K = Kind::IntLit;
  SourceLoc Loc;

  int64_t IntValue = 0;      ///< IntLit.
  bool BoolValue = false;    ///< BoolLit.
  std::string Name;          ///< VarRef.
  BinOp Op = BinOp::Add;     ///< Binary.
  std::unique_ptr<Expr> Lhs; ///< Binary.
  std::unique_ptr<Expr> Rhs; ///< Binary.
};

struct Block;

/// One item of a block body.
struct Stmt {
  enum class Kind : uint8_t { Decl, Assign, Nested, If, While };

  Kind K = Kind::Decl;
  SourceLoc Loc;

  std::string Name; ///< Decl / Assign target.
  Type DeclType = Type::Int;       ///< Decl.
  std::unique_ptr<Expr> Value;     ///< Assign value / If / While condition.
  std::unique_ptr<Block> Nested;   ///< Nested block.
  std::vector<Stmt> ThenBody;      ///< If / While body.
  std::vector<Stmt> ElseBody;      ///< If.
};

/// A begin...end block; \c Knows is the extended dialect's knows-list
/// (empty in the plain dialect, where blocks inherit everything).
struct Block {
  SourceLoc Loc;
  std::vector<std::string> Knows;
  bool HasKnowsClause = false;
  std::vector<Stmt> Body;
};

/// A whole program.
struct Program {
  std::unique_ptr<Block> Top;
};

} // namespace blocklang
} // namespace algspec

#endif // ALGSPEC_BLOCKLANG_AST_H
