//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scope and type checking for BlockLang, written entirely against the
/// ScopedTable interface — the compiler subsystem the paper's section 4
/// designs top-down.
///
/// Checks performed:
///  - duplicate declaration within a block (via IS_INBLOCK?);
///  - use of an undeclared (or, in the knows dialect, invisible)
///    identifier (via RETRIEVE);
///  - assignment type agreement and operator typing (+ on int, < on
///    int, == on matching types).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BLOCKLANG_SEMA_H
#define ALGSPEC_BLOCKLANG_SEMA_H

#include "blocklang/Ast.h"
#include "blocklang/Parser.h"
#include "blocklang/ScopedTable.h"
#include "support/Diagnostic.h"

#include <cstdint>

namespace algspec {

class SourceMgr;

namespace blocklang {

/// Counters describing how hard the checker leaned on the symbol table —
/// the workload profile benches E8/E9 replay.
struct SemaStats {
  uint64_t Declarations = 0;
  uint64_t Lookups = 0;
  uint64_t BlocksEntered = 0;
};

/// Runs scope/type checking over \p P using \p Table. Diagnostics go to
/// \p Diags; returns the statistics.
SemaStats checkProgram(const Program &P, ScopedTable &Table,
                       DiagnosticEngine &Diags);

/// One-call driver: lex, parse, and check \p Source with \p Table.
/// Returns true when the program is well-formed.
bool compile(const SourceMgr &SM, ScopedTable &Table,
             DiagnosticEngine &Diags, Dialect D = Dialect::Plain,
             SemaStats *StatsOut = nullptr);

} // namespace blocklang
} // namespace algspec

#endif // ALGSPEC_BLOCKLANG_SEMA_H
