//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for BlockLang programs.
///
/// Runs after scope/type checking (it asserts on constructs Sema would
/// reject) and returns the final values of the top-level block's
/// variables — the observable outcome of a program. Scoping at runtime
/// mirrors the symbol table's compile-time behaviour: a nested block's
/// variables vanish on exit, shadowed variables reappear.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BLOCKLANG_INTERP_H
#define ALGSPEC_BLOCKLANG_INTERP_H

#include "blocklang/Ast.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>

namespace algspec {
namespace blocklang {

/// A runtime value.
struct RuntimeValue {
  Type T = Type::Int;
  int64_t IntValue = 0;
  bool BoolValue = false;

  static RuntimeValue ofInt(int64_t V) {
    RuntimeValue R;
    R.T = Type::Int;
    R.IntValue = V;
    return R;
  }
  static RuntimeValue ofBool(bool V) {
    RuntimeValue R;
    R.T = Type::Bool;
    R.BoolValue = V;
    return R;
  }

  friend bool operator==(const RuntimeValue &A, const RuntimeValue &B) {
    if (A.T != B.T)
      return false;
    return A.T == Type::Int ? A.IntValue == B.IntValue
                            : A.BoolValue == B.BoolValue;
  }
};

/// Executes \p P (which must have passed Sema). Returns the final values
/// of the variables declared in the top-level block; uninitialized
/// variables default to 0 / false. Fails only on programs Sema would
/// have rejected (defensive, for callers that skipped checking).
Result<std::map<std::string, RuntimeValue>> interpret(const Program &P);

} // namespace blocklang
} // namespace algspec

#endif // ALGSPEC_BLOCKLANG_INTERP_H
