//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blocklang/ScopedTable.h"

#include "ast/AlgebraContext.h"

#include <cassert>

using namespace algspec;
using namespace algspec::blocklang;

SpecKnowsScopedTable::~SpecKnowsScopedTable() = default;

Result<std::unique_ptr<SpecKnowsScopedTable>>
SpecKnowsScopedTable::create() {
  auto Table =
      std::unique_ptr<SpecKnowsScopedTable>(new SpecKnowsScopedTable());
  Table->Ctx = std::make_unique<AlgebraContext>();

  auto Loaded = specs::loadKnowsSymboltable(*Table->Ctx);
  if (!Loaded)
    return Loaded.error();
  Table->Specs = Loaded.take();

  std::vector<const Spec *> Ptrs;
  for (const Spec &S : Table->Specs)
    Ptrs.push_back(&S);
  auto Created = Session::create(*Table->Ctx, Ptrs);
  if (!Created)
    return Created.error();
  Table->Sess = std::make_unique<Session>(Created.take());

  if (Result<void> R = Table->Sess->run("t := INIT"); !R)
    return R.error();
  return Table;
}

void SpecKnowsScopedTable::enterBlock(
    const std::vector<std::string> &Knows) {
  std::string List = "CREATE";
  for (const std::string &Id : Knows)
    List = "APPEND(" + List + ", '" + Id + ")";
  Result<void> R = Sess->run("t := ENTERBLOCK(t, " + List + ")");
  assert(R && "ENTERBLOCK cannot fail");
  (void)R;
}

bool SpecKnowsScopedTable::leaveBlock() {
  Result<TermId> Probe = Sess->eval("LEAVEBLOCK(t)");
  assert(Probe && "LEAVEBLOCK evaluation cannot fail");
  if (Ctx->isError(*Probe))
    return false;
  Result<void> R = Sess->assign("t", *Probe);
  assert(R && "assigning a probed value cannot fail");
  (void)R;
  return true;
}

void SpecKnowsScopedTable::add(std::string_view Id, Type T) {
  Result<void> R = Sess->run("t := ADD(t, '" + std::string(Id) + ", '" +
                             typeName(T) + ")");
  assert(R && "ADD cannot fail");
  (void)R;
}

bool SpecKnowsScopedTable::isInBlock(std::string_view Id) {
  Result<TermId> V = Sess->eval("IS_INBLOCK?(t, '" + std::string(Id) + ")");
  assert(V && "IS_INBLOCK? evaluation cannot fail");
  return *V == Ctx->trueTerm();
}

std::optional<Type> SpecKnowsScopedTable::retrieve(std::string_view Id) {
  Result<TermId> V = Sess->eval("RETRIEVE(t, '" + std::string(Id) + ")");
  assert(V && "RETRIEVE evaluation cannot fail");
  if (Ctx->isError(*V))
    return std::nullopt;
  const TermNode &Node = Ctx->node(*V);
  assert(Node.Kind == TermKind::Atom && "attributes travel as atoms");
  return Ctx->str(Node.AtomName) == "int" ? Type::Int : Type::Bool;
}

SpecScopedTable::~SpecScopedTable() = default;

Result<std::unique_ptr<SpecScopedTable>> SpecScopedTable::create() {
  auto Table = std::unique_ptr<SpecScopedTable>(new SpecScopedTable());
  Table->Ctx = std::make_unique<AlgebraContext>();

  auto Loaded = specs::loadSymboltable(*Table->Ctx);
  if (!Loaded)
    return Loaded.error();
  Table->TableSpec = Loaded.take();

  auto Created = Session::create(*Table->Ctx, {&Table->TableSpec});
  if (!Created)
    return Created.error();
  Table->Sess = std::make_unique<Session>(Created.take());

  if (Result<void> R = Table->Sess->run("t := INIT"); !R)
    return R.error();
  return Table;
}

void SpecScopedTable::enterBlock(const std::vector<std::string> &Knows) {
  assert(Knows.empty() && "the plain Symboltable spec has no knows-lists");
  (void)Knows;
  Result<void> R = Sess->run("t := ENTERBLOCK(t)");
  assert(R && "ENTERBLOCK cannot fail");
  (void)R;
}

bool SpecScopedTable::leaveBlock() {
  // Probe first: assigning an error into the register would poison the
  // table, while the concrete backends leave it untouched on failure.
  Result<TermId> Probe = Sess->eval("LEAVEBLOCK(t)");
  assert(Probe && "LEAVEBLOCK evaluation cannot fail");
  if (Ctx->isError(*Probe))
    return false;
  Result<void> R = Sess->assign("t", *Probe);
  assert(R && "assigning a probed value cannot fail");
  (void)R;
  return true;
}

void SpecScopedTable::add(std::string_view Id, Type T) {
  std::string Stmt = "t := ADD(t, '" + std::string(Id) + ", '" +
                     typeName(T) + ")";
  Result<void> R = Sess->run(Stmt);
  assert(R && "ADD cannot fail");
  (void)R;
}

bool SpecScopedTable::isInBlock(std::string_view Id) {
  Result<TermId> V = Sess->eval("IS_INBLOCK?(t, '" + std::string(Id) + ")");
  assert(V && "IS_INBLOCK? evaluation cannot fail");
  return *V == Ctx->trueTerm();
}

std::optional<Type> SpecScopedTable::retrieve(std::string_view Id) {
  Result<TermId> V = Sess->eval("RETRIEVE(t, '" + std::string(Id) + ")");
  assert(V && "RETRIEVE evaluation cannot fail");
  if (Ctx->isError(*V))
    return std::nullopt;
  const TermNode &Node = Ctx->node(*V);
  assert(Node.Kind == TermKind::Atom && "attributes travel as atoms");
  return Ctx->str(Node.AtomName) == "int" ? Type::Int : Type::Bool;
}
