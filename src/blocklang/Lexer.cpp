//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blocklang/Lexer.h"

#include <cctype>
#include <string>
#include <unordered_map>

using namespace algspec;
using namespace algspec::blocklang;

Lexer::Lexer(const SourceMgr &SM) : SM(SM), Text(SM.text()) {}

const Tok &Lexer::peek() {
  if (!HasLookahead) {
    Lookahead = lexImpl();
    HasLookahead = true;
  }
  return Lookahead;
}

Tok Lexer::next() {
  if (HasLookahead) {
    HasLookahead = false;
    return Lookahead;
  }
  return lexImpl();
}

static TokKind keywordKind(std::string_view Word) {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"begin", TokKind::KwBegin}, {"end", TokKind::KwEnd},
      {"var", TokKind::KwVar},     {"knows", TokKind::KwKnows},
      {"int", TokKind::KwInt},     {"bool", TokKind::KwBool},
      {"true", TokKind::KwTrue},   {"false", TokKind::KwFalse},
      {"if", TokKind::KwIf},       {"then", TokKind::KwThen},
      {"else", TokKind::KwElse},   {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},
  };
  auto It = Keywords.find(Word);
  return It == Keywords.end() ? TokKind::Ident : It->second;
}

Tok Lexer::lexImpl() {
  // Skip whitespace and // comments.
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    break;
  }

  Tok T;
  T.Loc = SM.locForOffset(Pos);
  if (Pos >= Text.size())
    return T;

  size_t Start = Pos;
  char C = Text[Pos];

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    ++Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    T.Text = Text.substr(Start, Pos - Start);
    T.Kind = keywordKind(T.Text);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    // Accumulate manually, saturating on overflow (std::stoll throws).
    int64_t Value = 0;
    bool Overflow = false;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      int Digit = Text[Pos] - '0';
      if (Value > (INT64_MAX - Digit) / 10)
        Overflow = true;
      else
        Value = Value * 10 + Digit;
      ++Pos;
    }
    T.Text = Text.substr(Start, Pos - Start);
    T.Kind = Overflow ? TokKind::Unknown : TokKind::IntLit;
    T.IntValue = Value;
    return T;
  }

  ++Pos;
  switch (C) {
  case ':':
    if (Pos < Text.size() && Text[Pos] == '=') {
      ++Pos;
      T.Kind = TokKind::Assign;
    } else {
      T.Kind = TokKind::Colon;
    }
    break;
  case ';':
    T.Kind = TokKind::Semi;
    break;
  case ',':
    T.Kind = TokKind::Comma;
    break;
  case '+':
    T.Kind = TokKind::Plus;
    break;
  case '<':
    T.Kind = TokKind::Less;
    break;
  case '=':
    if (Pos < Text.size() && Text[Pos] == '=') {
      ++Pos;
      T.Kind = TokKind::EqEq;
    } else {
      T.Kind = TokKind::Unknown;
    }
    break;
  case '(':
    T.Kind = TokKind::LParen;
    break;
  case ')':
    T.Kind = TokKind::RParen;
    break;
  default:
    T.Kind = TokKind::Unknown;
    break;
  }
  T.Text = Text.substr(Start, Pos - Start);
  return T;
}

const char *blocklang::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwBegin:
    return "'begin'";
  case TokKind::KwEnd:
    return "'end'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwKnows:
    return "'knows'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::Assign:
    return "':='";
  case TokKind::Colon:
    return "':'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Less:
    return "'<'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Unknown:
    return "unrecognized character";
  }
  return "token";
}
