//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for BlockLang (grammar in Lexer.h).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BLOCKLANG_PARSER_H
#define ALGSPEC_BLOCKLANG_PARSER_H

#include "blocklang/Ast.h"
#include "support/Diagnostic.h"

namespace algspec {

class SourceMgr;

namespace blocklang {

/// Which dialect to accept.
enum class Dialect {
  Plain, ///< Blocks inherit all enclosing declarations.
  Knows, ///< Blocks must list inherited identifiers (`begin knows x, y;`).
};

/// Parses a program; returns a Program with a null Top on fatal syntax
/// errors (diagnostics explain). A knows-clause in Plain dialect is a
/// diagnosed error, as is its absence being relied upon in Knows dialect
/// (a block without a clause inherits nothing there).
Program parseProgram(const SourceMgr &SM, DiagnosticEngine &Diags,
                     Dialect D = Dialect::Plain);

} // namespace blocklang
} // namespace algspec

#endif // ALGSPEC_BLOCKLANG_PARSER_H
