//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blocklang/Interp.h"

#include <unordered_map>
#include <vector>

using namespace algspec;
using namespace algspec::blocklang;

namespace {

/// Runtime environment: one map per open block, innermost last.
/// Assignment updates the nearest binding (the plain dialect; the knows
/// dialect's visibility was already enforced by Sema, and the runtime
/// semantics of an accepted program are the same).
class ScopeStack {
public:
  void enter() { Scopes.emplace_back(); }
  void leave() { Scopes.pop_back(); }

  void declare(const std::string &Name, RuntimeValue Value) {
    Scopes.back()[Name] = Value;
  }

  RuntimeValue *find(const std::string &Name) {
    for (size_t I = Scopes.size(); I != 0; --I) {
      auto It = Scopes[I - 1].find(Name);
      if (It != Scopes[I - 1].end())
        return &It->second;
    }
    return nullptr;
  }

  const std::unordered_map<std::string, RuntimeValue> &top() const {
    return Scopes.back();
  }

private:
  std::vector<std::unordered_map<std::string, RuntimeValue>> Scopes;
};

class Interpreter {
public:
  Result<std::map<std::string, RuntimeValue>> run(const Program &P) {
    if (!P.Top)
      return makeError("no program");
    Env.enter();
    if (Result<void> R = execStmts(P.Top->Body); !R)
      return R.error();
    std::map<std::string, RuntimeValue> Out;
    for (const auto &[Name, Value] : Env.top())
      Out.emplace(Name, Value);
    Env.leave();
    return Out;
  }

private:
  Result<void> execStmts(const std::vector<Stmt> &Body) {
    for (const Stmt &S : Body)
      if (Result<void> R = execStmt(S); !R)
        return R;
    return Result<void>();
  }

  Result<void> execStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Decl:
      Env.declare(S.Name, S.DeclType == Type::Int
                              ? RuntimeValue::ofInt(0)
                              : RuntimeValue::ofBool(false));
      return Result<void>();

    case Stmt::Kind::Assign: {
      RuntimeValue *Slot = Env.find(S.Name);
      if (!Slot)
        return makeError("runtime: assignment to undeclared '" + S.Name +
                         "' (program was not checked)");
      Result<RuntimeValue> Value = eval(*S.Value);
      if (!Value)
        return Value.error();
      *Slot = *Value;
      return Result<void>();
    }

    case Stmt::Kind::Nested: {
      Env.enter();
      Result<void> R = execStmts(S.Nested->Body);
      Env.leave();
      return R;
    }

    case Stmt::Kind::If: {
      Result<RuntimeValue> Cond = eval(*S.Value);
      if (!Cond)
        return Cond.error();
      return execStmts(Cond->BoolValue ? S.ThenBody : S.ElseBody);
    }

    case Stmt::Kind::While: {
      // Defensive iteration cap: BlockLang has no I/O, so a loop that
      // spins this long is a runaway, not a program.
      for (uint64_t Iter = 0;; ++Iter) {
        if (Iter >= (1u << 24))
          return makeError("runtime: while-loop iteration limit exceeded");
        Result<RuntimeValue> Cond = eval(*S.Value);
        if (!Cond)
          return Cond.error();
        if (!Cond->BoolValue)
          return Result<void>();
        if (Result<void> R = execStmts(S.ThenBody); !R)
          return R;
      }
    }
    }
    return makeError("runtime: unknown statement");
  }

  Result<RuntimeValue> eval(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return RuntimeValue::ofInt(E.IntValue);
    case Expr::Kind::BoolLit:
      return RuntimeValue::ofBool(E.BoolValue);
    case Expr::Kind::VarRef: {
      RuntimeValue *Slot = Env.find(E.Name);
      if (!Slot)
        return makeError("runtime: use of undeclared '" + E.Name +
                         "' (program was not checked)");
      return *Slot;
    }
    case Expr::Kind::Binary: {
      Result<RuntimeValue> L = eval(*E.Lhs);
      if (!L)
        return L;
      Result<RuntimeValue> R = eval(*E.Rhs);
      if (!R)
        return R;
      switch (E.Op) {
      case Expr::BinOp::Add:
        return RuntimeValue::ofInt(L->IntValue + R->IntValue);
      case Expr::BinOp::Less:
        return RuntimeValue::ofBool(L->IntValue < R->IntValue);
      case Expr::BinOp::Equal:
        if (L->T == Type::Int)
          return RuntimeValue::ofBool(L->IntValue == R->IntValue);
        return RuntimeValue::ofBool(L->BoolValue == R->BoolValue);
      }
      return makeError("runtime: unknown operator");
    }
    }
    return makeError("runtime: unknown expression");
  }

  ScopeStack Env;
};

} // namespace

Result<std::map<std::string, RuntimeValue>>
blocklang::interpret(const Program &P) {
  Interpreter I;
  return I.run(P);
}
