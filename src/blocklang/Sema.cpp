//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "blocklang/Sema.h"

#include "support/SourceMgr.h"

#include <optional>

using namespace algspec;
using namespace algspec::blocklang;

namespace {

class Checker {
public:
  Checker(ScopedTable &Table, DiagnosticEngine &Diags)
      : Table(Table), Diags(Diags) {}

  SemaStats run(const Program &P) {
    if (P.Top)
      checkBlock(*P.Top, /*IsTop=*/true);
    return Stats;
  }

private:
  void checkBlock(const Block &B, bool IsTop) {
    // The outermost scope is the table's own initial scope; nested
    // blocks enter/leave.
    if (!IsTop) {
      Table.enterBlock(B.Knows);
      ++Stats.BlocksEntered;
    }
    for (const Stmt &S : B.Body)
      checkStmt(S);
    if (!IsTop && !Table.leaveBlock())
      Diags.error(B.Loc, "unbalanced block nesting");
  }

  void checkStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Decl:
      if (Table.isInBlock(S.Name))
        Diags.error(S.Loc,
                    "duplicate declaration of '" + S.Name +
                        "' in the same block");
      else {
        Table.add(S.Name, S.DeclType);
        ++Stats.Declarations;
      }
      return;
    case Stmt::Kind::Assign: {
      std::optional<Type> Target = lookup(S.Name, S.Loc);
      std::optional<Type> ValueType = checkExpr(*S.Value);
      if (Target && ValueType && *Target != *ValueType)
        Diags.error(S.Loc, "assigning " +
                               std::string(typeName(*ValueType)) +
                               " to '" + S.Name + "' of type " +
                               typeName(*Target));
      return;
    }
    case Stmt::Kind::Nested:
      checkBlock(*S.Nested, /*IsTop=*/false);
      return;
    case Stmt::Kind::If:
    case Stmt::Kind::While: {
      std::optional<Type> Cond = checkExpr(*S.Value);
      if (Cond && *Cond != Type::Bool)
        Diags.error(S.Loc, S.K == Stmt::Kind::If
                               ? "'if' needs a bool condition"
                               : "'while' needs a bool condition");
      // Statement bodies are not scopes: only begin...end opens one, so
      // declarations must sit at block level (classic block-structured
      // discipline; it also keeps the symbol-table story exact).
      checkBody(S.ThenBody);
      checkBody(S.ElseBody);
      return;
    }
    }
  }

  void checkBody(const std::vector<Stmt> &Body) {
    for (const Stmt &S : Body) {
      if (S.K == Stmt::Kind::Decl) {
        Diags.error(S.Loc, "declarations are only allowed directly in a "
                           "block; open a begin...end block");
        continue;
      }
      checkStmt(S);
    }
  }

  std::optional<Type> lookup(const std::string &Name, SourceLoc Loc) {
    ++Stats.Lookups;
    std::optional<Type> T = Table.retrieve(Name);
    if (!T)
      Diags.error(Loc, "use of undeclared (or invisible) identifier '" +
                           Name + "'");
    return T;
  }

  std::optional<Type> checkExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return Type::Int;
    case Expr::Kind::BoolLit:
      return Type::Bool;
    case Expr::Kind::VarRef:
      return lookup(E.Name, E.Loc);
    case Expr::Kind::Binary: {
      std::optional<Type> L = checkExpr(*E.Lhs);
      std::optional<Type> R = checkExpr(*E.Rhs);
      if (!L || !R)
        return std::nullopt;
      switch (E.Op) {
      case Expr::BinOp::Add:
        if (*L != Type::Int || *R != Type::Int) {
          Diags.error(E.Loc, "'+' needs int operands");
          return std::nullopt;
        }
        return Type::Int;
      case Expr::BinOp::Less:
        if (*L != Type::Int || *R != Type::Int) {
          Diags.error(E.Loc, "'<' needs int operands");
          return std::nullopt;
        }
        return Type::Bool;
      case Expr::BinOp::Equal:
        if (*L != *R) {
          Diags.error(E.Loc, "'==' needs operands of one type");
          return std::nullopt;
        }
        return Type::Bool;
      }
      return std::nullopt;
    }
    }
    return std::nullopt;
  }

  ScopedTable &Table;
  DiagnosticEngine &Diags;
  SemaStats Stats;
};

} // namespace

SemaStats blocklang::checkProgram(const Program &P, ScopedTable &Table,
                                  DiagnosticEngine &Diags) {
  Checker C(Table, Diags);
  return C.run(P);
}

bool blocklang::compile(const SourceMgr &SM, ScopedTable &Table,
                        DiagnosticEngine &Diags, Dialect D,
                        SemaStats *StatsOut) {
  Program P = parseProgram(SM, Diags, D);
  if (Diags.hasErrors() || !P.Top)
    return false;
  SemaStats Stats = checkProgram(P, Table, Diags);
  if (StatsOut)
    *StatsOut = Stats;
  return !Diags.hasErrors();
}
