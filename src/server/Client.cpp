//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include "support/Json.h"

#include <initializer_list>
#include <mutex>
#include <thread>
#include <vector>

using namespace algspec;
using namespace algspec::server;

Result<WireResponse> server::roundTrip(const Socket &Sock,
                                       FrameReader &Reader,
                                       std::string_view Frame) {
  if (Result<void> R = sendAll(Sock, Frame); !R)
    return R.error();
  std::string Line;
  FrameStatus Status = Reader.readFrame(Sock, Line);
  if (Status != FrameStatus::Frame)
    return makeError("connection closed before a response arrived");
  Result<JsonValue> Parsed = parseJson(Line);
  if (!Parsed)
    return makeError("malformed response frame: " +
                     Parsed.error().message());
  WireResponse Out;
  Out.Raw = Line;
  if (const JsonValue *Type = Parsed->get("type"))
    Out.Type = Type->asString();
  if (const JsonValue *Exit = Parsed->get("exit"))
    Out.Exit = static_cast<int>(Exit->asInt());
  if (const JsonValue *Stdout = Parsed->get("stdout"))
    Out.Out = Stdout->asString();
  if (const JsonValue *Stderr = Parsed->get("stderr"))
    Out.Err = Stderr->asString();
  if (const JsonValue *Cached = Parsed->get("cached"))
    Out.Cached = Cached->asBool();
  if (const JsonValue *Err = Parsed->get("error")) {
    if (const JsonValue *Code = Err->get("code"))
      Out.ErrorCode = Code->asString();
    if (const JsonValue *Message = Err->get("message"))
      Out.ErrorMessage = Message->asString();
  }
  return Out;
}

Result<WireResponse> server::requestOnce(const SocketAddress &Addr,
                                         std::string_view Frame,
                                         size_t MaxFrameBytes) {
  Result<Socket> Sock = connectSocket(Addr);
  if (!Sock)
    return Sock.error();
  FrameReader Reader(MaxFrameBytes);
  return roundTrip(*Sock, Reader, Frame);
}

//===----------------------------------------------------------------------===//
// Stress driver
//===----------------------------------------------------------------------===//

namespace {

CommandRequest builtinRequest(std::string_view Command,
                              std::initializer_list<const char *> Builtins,
                              unsigned Jobs) {
  CommandRequest R;
  R.Command = std::string(Command);
  for (const char *Name : Builtins)
    R.Sources.push_back({std::string(Name) + ".alg",
                         std::string(builtinSpecText(Name))});
  R.Opts.Jobs = Jobs;
  return R;
}

/// The deterministic request mix, cheap operations dominating so the
/// stress load stays latency- rather than compute-bound. Every request
/// uses only embedded builtins, so client and server agree on the
/// sources without touching the filesystem.
std::vector<CommandRequest> stressMix(unsigned Jobs) {
  std::vector<CommandRequest> Mix;

  CommandRequest Eval = builtinRequest("eval", {"queue"}, Jobs);
  Eval.Opts.TermText = "FRONT(ADD(ADD(NEW, 'a), 'b))";
  Mix.push_back(Eval);

  CommandRequest Trace = builtinRequest("trace", {"queue"}, Jobs);
  Trace.Opts.TermText = "REMOVE(ADD(ADD(NEW, 'a), 'b))";
  Mix.push_back(Trace);

  Mix.push_back(builtinRequest("lint", {"queue", "symboltable"}, Jobs));

  CommandRequest EvalBq = builtinRequest("eval", {"boundedqueue"}, Jobs);
  EvalBq.Opts.TermText = "BSIZE(ENQUEUE(ENQUEUE(BNEW(2), 'a), 'b))";
  Mix.push_back(EvalBq);

  CommandRequest Analyze = builtinRequest("analyze", {"boundedqueue"}, Jobs);
  Analyze.Opts.Json = true;
  Mix.push_back(Analyze);

  Mix.push_back(builtinRequest("check", {"queue"}, Jobs));

  CommandRequest LintJson = builtinRequest("lint", {"bst"}, Jobs);
  LintJson.Opts.Json = true;
  Mix.push_back(LintJson);

  CommandRequest Verify = builtinRequest(
      "verify", {"symboltable", "stackarray", "symboltable_impl"}, Jobs);
  Verify.Opts.AbstractSpec = "Symboltable";
  Verify.Opts.RepSort = "Stack";
  Verify.Opts.PhiName = "PHI";
  Verify.Opts.OpMap = {{"INIT", "INIT_R"},
                       {"ENTERBLOCK", "ENTERBLOCK_R"},
                       {"LEAVEBLOCK", "LEAVEBLOCK_R"},
                       {"ADD", "ADD_R"},
                       {"IS_INBLOCK?", "IS_INBLOCK_R?"},
                       {"RETRIEVE", "RETRIEVE_R"}};
  Verify.Opts.Depth = 3;
  Mix.push_back(Verify);

  return Mix;
}

struct StatsCounters {
  uint64_t Served = 0;
  uint64_t Rejected = 0;
  uint64_t QueueDepth = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

Result<StatsCounters> fetchStats(const SocketAddress &Addr) {
  Result<WireResponse> R =
      requestOnce(Addr, encodeControlRequest("", "stats"));
  if (!R)
    return R.error();
  Result<JsonValue> Parsed = parseJson(R->Raw);
  if (!Parsed || !Parsed->isObject())
    return makeError("malformed stats response");
  StatsCounters C;
  if (const JsonValue *V = Parsed->get("requestsServed"))
    C.Served = static_cast<uint64_t>(V->asInt());
  if (const JsonValue *V = Parsed->get("requestsRejected"))
    C.Rejected = static_cast<uint64_t>(V->asInt());
  if (const JsonValue *V = Parsed->get("queueDepth"))
    C.QueueDepth = static_cast<uint64_t>(V->asInt());
  if (const JsonValue *Cache = Parsed->get("cache")) {
    if (const JsonValue *V = Cache->get("hits"))
      C.CacheHits = static_cast<uint64_t>(V->asInt());
    if (const JsonValue *V = Cache->get("misses"))
      C.CacheMisses = static_cast<uint64_t>(V->asInt());
  }
  return C;
}

} // namespace

Result<StressReport> server::runStress(const SocketAddress &Addr,
                                       const StressOptions &Opts) {
  std::vector<CommandRequest> Mix = stressMix(Opts.Jobs);
  // The local half of the byte-identity check: run every mix entry
  // through the exact one-shot CLI code path.
  std::vector<CommandResult> Expected;
  Expected.reserve(Mix.size());
  for (const CommandRequest &R : Mix)
    Expected.push_back(runCommand(R));

  Result<StatsCounters> Before = fetchStats(Addr);
  if (!Before)
    return makeError("cannot fetch pre-stress stats: " +
                     Before.error().message());

  StressReport Report;
  std::mutex ReportMutex;
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Opts.Connections; ++C) {
    Threads.emplace_back([&, C] {
      Result<Socket> Sock = connectSocket(Addr);
      if (!Sock) {
        std::lock_guard<std::mutex> Lock(ReportMutex);
        Report.TransportErrors += Opts.RequestsPerConnection;
        return;
      }
      FrameReader Reader(64u << 20);
      for (unsigned K = 0; K != Opts.RequestsPerConnection; ++K) {
        // Stagger the starting offset per connection so concurrent
        // requests hit different cache entries, not one in lockstep.
        size_t Pick = (C + K) % Mix.size();
        int64_t Id = static_cast<int64_t>(C) * 1000000 + K;
        std::string Frame =
            encodeCommandRequest(std::to_string(Id), Mix[Pick]);
        Result<WireResponse> Resp = roundTrip(*Sock, Reader, Frame);
        std::lock_guard<std::mutex> Lock(ReportMutex);
        ++Report.Sent;
        if (!Resp) {
          ++Report.TransportErrors;
          if (Report.FirstMismatch.empty())
            Report.FirstMismatch = "transport: " + Resp.error().message();
          continue;
        }
        const CommandResult &Want = Expected[Pick];
        if (Resp->Type == "response" && Resp->Exit == Want.ExitCode &&
            Resp->Out == Want.Out && Resp->Err == Want.Err) {
          ++Report.Matched;
        } else {
          ++Report.Mismatched;
          if (Report.FirstMismatch.empty())
            Report.FirstMismatch =
                Mix[Pick].Command + " (id " + std::to_string(Id) +
                "): got type=" + Resp->Type +
                " exit=" + std::to_string(Resp->Exit) +
                (Resp->ErrorCode.empty() ? ""
                                         : " error=" + Resp->ErrorCode) +
                ", want exit=" + std::to_string(Want.ExitCode);
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  Result<StatsCounters> After = fetchStats(Addr);
  if (!After)
    return makeError("cannot fetch post-stress stats: " +
                     After.error().message());

  uint64_t ServedDelta = After->Served - Before->Served;
  uint64_t LookupDelta = (After->CacheHits + After->CacheMisses) -
                         (Before->CacheHits + Before->CacheMisses);
  Report.StatsReconciled = ServedDelta == Report.Sent &&
                           LookupDelta == Report.Sent &&
                           After->Rejected == Before->Rejected &&
                           After->QueueDepth == 0;
  Report.StatsDetail =
      "served +" + std::to_string(ServedDelta) + ", cache lookups +" +
      std::to_string(LookupDelta) + ", rejected +" +
      std::to_string(After->Rejected - Before->Rejected) +
      ", queue depth " + std::to_string(After->QueueDepth) + " (sent " +
      std::to_string(Report.Sent) + ")";
  return Report;
}
