//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `algspec serve` daemon: accepts connections on TCP and/or
/// Unix-domain listeners, reads newline-delimited JSON request frames,
/// and dispatches the one-shot CLI subcommands against cached
/// pre-elaborated workspaces.
///
/// Thread structure:
///
///   acceptor ──────── polls the listeners, a stop pipe, and (for the
///                     CLI) the SIGTERM/SIGINT self-pipe
///   1 reader / conn ─ frames, validates, parses; answers control
///                     requests (hello, stats) inline and enqueues
///                     command requests
///   N workers ─────── dequeue, resolve a per-worker cached workspace,
///                     dispatch, write the response under the
///                     connection's write lock
///
/// Backpressure is immediate: a command arriving while the queue sits
/// at its high-water mark is answered with an `overloaded` error, never
/// buffered. Shutdown is a drain: stop accepting, shut down the read
/// side of every connection, finish everything already queued, then
/// join all threads and return — the CLI then exits 0.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SERVER_SERVER_H
#define ALGSPEC_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/WorkspaceCache.h"
#include "support/Socket.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace algspec {
namespace server {

struct ServerOptions {
  /// Listen addresses; at least one is required.
  std::vector<SocketAddress> Listen;
  /// Worker threads; 0 = hardware concurrency.
  unsigned Workers = 0;
  /// Queue high-water mark: command requests beyond this many queued
  /// jobs are rejected with `overloaded`.
  size_t QueueMax = 64;
  /// Hard bound on one request frame's size in bytes.
  size_t MaxFrameBytes = 4u << 20;
  /// Workspace-cache capacity in distinct source sets.
  size_t CacheMaxEntries = 16;
  /// Server-side fuel cap applied to every request's engine (clamps the
  /// request's own maxSteps); 0 = engine default.
  uint64_t MaxSteps = 0;
  /// Default per-request queue-wait deadline when the request carries
  /// none; 0 = none.
  int64_t DefaultDeadlineMs = 0;
  /// Accept "sleep" requests (in-process tests and the bench load
  /// generator only; `algspec serve` never sets this).
  bool EnableTestHooks = false;
  /// Watch SIGTERM/SIGINT and drain on delivery (the CLI path; tests
  /// stop the server programmatically instead).
  bool WatchSignals = false;
  /// Announce listeners and shutdown on stderr.
  bool Verbose = false;
};

/// Cumulative arena accounting across the per-request truncations of
/// every cached workspace (each served command truncates its worker's
/// workspace back to the post-elaboration epoch).
struct ServerArenaStats {
  uint64_t Truncations = 0; ///< Request truncations that freed anything.
  uint64_t TermsFreed = 0;  ///< Term nodes those truncations released.
  uint64_t BytesFreed = 0;  ///< Arena bytes those truncations released.
  /// Largest peak live term count any workspace context ever reached.
  uint64_t HighWaterTerms = 0;
};

/// A point-in-time copy of the live counters, as reported by the
/// `stats` request.
struct ServerStatsSnapshot {
  uint64_t ConnectionsAccepted = 0;
  uint64_t RequestsServed = 0;   ///< Command/sleep responses sent.
  uint64_t RequestsRejected = 0; ///< `overloaded` rejections.
  uint64_t DeadlinesExpired = 0; ///< `deadline_exceeded` responses.
  uint64_t ProtocolErrors = 0;   ///< Malformed frames answered or dropped.
  uint64_t QueueDepth = 0;       ///< Jobs queued right now.
  uint64_t QueueHighWater = 0;   ///< Largest depth observed.
  CacheStats Cache;
  /// Engine counters aggregated over every served request (including
  /// each request's own worker replicas when it asked for jobs > 1).
  EngineStats Engine;
  ServerArenaStats Arena;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds every listener and spawns the acceptor and worker threads.
  Result<void> start();

  /// Begins a graceful drain; idempotent and safe from any thread.
  void requestStop();

  /// Blocks until the drain completes and every thread is joined.
  void wait();

  /// The port the first TCP listener actually bound (for port 0).
  int boundTcpPort() const { return BoundPort; }

  ServerStatsSnapshot statsSnapshot();

private:
  struct Connection {
    explicit Connection(Socket S) : Sock(std::move(S)) {}
    Socket Sock;
    std::mutex WriteMutex;
  };

  struct Job {
    std::shared_ptr<Connection> Conn;
    Request Req;
    std::chrono::steady_clock::time_point Enqueued;
  };

  void acceptorLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  void workerLoop(size_t WorkerIndex);

  /// Drops the server's reference to a connection whose reader has
  /// exited; the socket closes once the last queued job releases it.
  void releaseConnection(const std::shared_ptr<Connection> &Conn);

  /// Sends one frame under the connection's write lock; a vanished peer
  /// is ignored (the reader will see the close and clean up).
  void respond(Connection &Conn, std::string_view Frame);

  void handleControl(Connection &Conn, const Request &Req);
  void serveJob(size_t WorkerIndex, Job &J);

  ServerOptions Opts;
  unsigned NumWorkers = 1;
  WorkspaceCache Cache;

  std::vector<Socket> Listeners;
  std::vector<std::string> UnixPaths; ///< Unlinked after shutdown.
  int BoundPort = 0;
  int StopPipe[2] = {-1, -1};

  std::thread Acceptor;
  std::vector<std::thread> Workers;

  std::mutex ThreadsMutex;
  std::vector<std::thread> Readers;
  std::vector<std::shared_ptr<Connection>> Connections;

  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<Job> Queue;
  bool Draining = false;
  std::atomic<bool> WaitCompleted{false};

  std::atomic<uint64_t> ConnectionsAccepted{0};
  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> RequestsRejected{0};
  std::atomic<uint64_t> DeadlinesExpired{0};
  std::atomic<uint64_t> ProtocolErrors{0};
  std::atomic<uint64_t> QueueHighWater{0};

  std::mutex EngineMutex;
  EngineStats Engine;
  ServerArenaStats Arena; ///< Guarded by EngineMutex.
};

/// The CLI entry point: start, announce, block until SIGTERM/SIGINT,
/// drain, return. Returns an error only for startup failures.
Result<void> serveForever(ServerOptions Opts);

} // namespace server
} // namespace algspec

#endif // ALGSPEC_SERVER_SERVER_H
