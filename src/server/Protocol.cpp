//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Json.h"

#include <cstdlib>

using namespace algspec;
using namespace algspec::server;

std::string_view server::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::InvalidRequest:
    return "invalid_request";
  case ErrorCode::UnknownType:
    return "unknown_type";
  case ErrorCode::OversizedFrame:
    return "oversized_frame";
  case ErrorCode::BadUtf8:
    return "bad_utf8";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrorCode::ShuttingDown:
    return "shutting_down";
  case ErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

//===----------------------------------------------------------------------===//
// Request decoding
//===----------------------------------------------------------------------===//

namespace {

bool fail(ProtocolError &Err, ErrorCode Code, std::string Message) {
  Err.Code = Code;
  Err.Message = std::move(Message);
  return false;
}

/// Decodes the "options" object into \p Opts. Unknown members are
/// ignored (forward compatibility); known members with the wrong JSON
/// kind are an error — a typo'd value must not silently fall back to a
/// default and produce a misleadingly successful response.
bool decodeOptions(const JsonValue &V, CommandOptions &Opts,
                   ProtocolError &Err) {
  const JsonValue::Object *O = V.object();
  if (!O)
    return fail(Err, ErrorCode::InvalidRequest,
                "'options' must be an object");
  for (const JsonValue::Member &M : *O) {
    const std::string &Key = M.first;
    const JsonValue &Val = M.second;
    auto wantString = [&](std::string &Into) {
      if (!Val.isString())
        return fail(Err, ErrorCode::InvalidRequest,
                    "option '" + Key + "' must be a string");
      Into = Val.asString();
      return true;
    };
    auto wantBool = [&](bool &Into) {
      if (!Val.isBool())
        return fail(Err, ErrorCode::InvalidRequest,
                    "option '" + Key + "' must be a boolean");
      Into = Val.asBool();
      return true;
    };
    if (Key == "term") {
      if (!wantString(Opts.TermText))
        return false;
    } else if (Key == "depth") {
      if (!Val.isInt() || Val.asInt() < 0)
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'depth' must be a non-negative integer");
      Opts.Depth = static_cast<unsigned>(Val.asInt());
    } else if (Key == "dynamic") {
      if (!Val.isInt())
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'dynamic' must be an integer");
      Opts.DynamicDepth = static_cast<int>(Val.asInt());
    } else if (Key == "jobs") {
      if (!Val.isInt() || Val.asInt() < 0)
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'jobs' must be a non-negative integer");
      Opts.Jobs = static_cast<unsigned>(Val.asInt());
    } else if (Key == "engine") {
      if (!Val.isString() ||
          (Val.asString() != "compiled" && Val.asString() != "interp"))
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'engine' must be 'compiled' or 'interp'");
      Opts.CompileEngine = Val.asString() == "compiled";
    } else if (Key == "egraph") {
      if (!Val.isString() ||
          (Val.asString() != "on" && Val.asString() != "off" &&
           Val.asString() != "auto"))
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'egraph' must be 'on', 'off', or 'auto'");
      Opts.EGraph = Val.asString() == "on"    ? EqSatMode::On
                    : Val.asString() == "off" ? EqSatMode::Off
                                              : EqSatMode::Auto;
    } else if (Key == "json") {
      if (!wantBool(Opts.Json))
        return false;
    } else if (Key == "werror") {
      if (!wantBool(Opts.WarningsAsErrors))
        return false;
    } else if (Key == "maxSteps") {
      if (!Val.isInt() || Val.asInt() < 0)
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'maxSteps' must be a non-negative integer");
      Opts.MaxSteps = static_cast<uint64_t>(Val.asInt());
    } else if (Key == "abstract") {
      if (!wantString(Opts.AbstractSpec))
        return false;
    } else if (Key == "repSort") {
      if (!wantString(Opts.RepSort))
        return false;
    } else if (Key == "phi") {
      if (!wantString(Opts.PhiName))
        return false;
    } else if (Key == "map") {
      const JsonValue::Object *Map = Val.object();
      if (!Map)
        return fail(Err, ErrorCode::InvalidRequest,
                    "option 'map' must be an object of "
                    "ABSTRACT: IMPL pairs");
      for (const JsonValue::Member &Pair : *Map) {
        if (!Pair.second.isString())
          return fail(Err, ErrorCode::InvalidRequest,
                      "option 'map' values must be strings");
        Opts.OpMap.emplace_back(Pair.first, Pair.second.asString());
      }
    } else if (Key == "invariant") {
      if (!wantString(Opts.InvariantName))
        return false;
    } else if (Key == "free") {
      if (!wantBool(Opts.FreeDomain))
        return false;
    } else if (Key == "hom") {
      if (!wantBool(Opts.Homomorphism))
        return false;
    }
  }
  return true;
}

} // namespace

bool server::parseRequest(std::string_view Frame, Request &Out,
                          ProtocolError &Err) {
  Result<JsonValue> Parsed = parseJson(Frame);
  if (!Parsed)
    return fail(Err, ErrorCode::ParseError, Parsed.error().message());
  const JsonValue &Root = *Parsed;
  if (!Root.isObject())
    return fail(Err, ErrorCode::InvalidRequest,
                "request must be a JSON object");

  if (const JsonValue *Id = Root.get("id")) {
    if (!Id->isString() && !Id->isNumber())
      return fail(Err, ErrorCode::InvalidRequest,
                  "'id' must be a string or a number");
    Out.IdJson = dumpJson(*Id);
  }

  const JsonValue *Type = Root.get("type");
  if (!Type || !Type->isString())
    return fail(Err, ErrorCode::InvalidRequest,
                "request needs a string 'type'");
  Out.Type = Type->asString();

  if (const JsonValue *Deadline = Root.get("deadlineMs")) {
    if (!Deadline->isInt() || Deadline->asInt() < 0)
      return fail(Err, ErrorCode::InvalidRequest,
                  "'deadlineMs' must be a non-negative integer");
    Out.DeadlineMs = Deadline->asInt();
  }

  if (isControlRequest(Out.Type))
    return true;

  if (Out.Type == "sleep") {
    if (const JsonValue *Ms = Root.get("sleepMs")) {
      if (!Ms->isInt() || Ms->asInt() < 0)
        return fail(Err, ErrorCode::InvalidRequest,
                    "'sleepMs' must be a non-negative integer");
      Out.SleepMs = Ms->asInt();
    }
    return true;
  }

  if (!isServableCommand(Out.Type))
    return fail(Err, ErrorCode::UnknownType,
                "unknown request type '" + Out.Type + "'");
  Out.Command.Command = Out.Type;

  if (const JsonValue *Builtins = Root.get("builtins")) {
    const JsonValue::Array *A = Builtins->array();
    if (!A)
      return fail(Err, ErrorCode::InvalidRequest,
                  "'builtins' must be an array of names");
    for (const JsonValue &Name : *A) {
      if (!Name.isString())
        return fail(Err, ErrorCode::InvalidRequest,
                    "'builtins' entries must be strings");
      std::string_view Text = builtinSpecText(Name.asString());
      if (Text.empty())
        return fail(Err, ErrorCode::InvalidRequest,
                    "unknown builtin spec '" + Name.asString() + "'");
      // The CLI loads a builtin under the buffer name "<name>.alg";
      // matching it keeps diagnostics byte-identical.
      Out.Command.Sources.push_back(
          {Name.asString() + ".alg", std::string(Text)});
    }
  }

  if (const JsonValue *Sources = Root.get("sources")) {
    const JsonValue::Array *A = Sources->array();
    if (!A)
      return fail(Err, ErrorCode::InvalidRequest,
                  "'sources' must be an array of {name, text} objects");
    for (const JsonValue &S : *A) {
      const JsonValue *Name = S.get("name");
      const JsonValue *Text = S.get("text");
      if (!S.isObject() || !Name || !Name->isString() || !Text ||
          !Text->isString())
        return fail(Err, ErrorCode::InvalidRequest,
                    "'sources' entries must be {name, text} objects "
                    "with string members");
      Out.Command.Sources.push_back({Name->asString(), Text->asString()});
    }
  }

  if (const JsonValue *Options = Root.get("options"))
    if (!decodeOptions(*Options, Out.Command.Opts, Err))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Response encoding
//===----------------------------------------------------------------------===//

namespace {

/// Opens a compact response object and splices the echoed id. The id
/// was produced by dumpJson() (or validated client-side), so splicing
/// it raw cannot break the framing.
void openResponse(std::string &Out, const std::string &IdJson) {
  Out.clear();
  Out.push_back('{');
  if (!IdJson.empty()) {
    Out += "\"id\": ";
    Out += IdJson;
    Out += ", ";
  }
}

} // namespace

std::string server::encodeErrorResponse(const std::string &IdJson,
                                        ErrorCode Code,
                                        std::string_view Message) {
  std::string Out;
  openResponse(Out, IdJson);
  Out += "\"type\": \"error\", \"error\": {\"code\": \"";
  Out += errorCodeName(Code);
  Out += "\", \"message\": \"";
  Out += jsonEscape(Message);
  Out += "\"}}\n";
  return Out;
}

std::string server::encodeCommandResponse(const std::string &IdJson,
                                          const CommandResult &R,
                                          bool CacheHit) {
  std::string Out;
  openResponse(Out, IdJson);
  Out += "\"type\": \"response\", \"exit\": ";
  Out += std::to_string(R.ExitCode);
  Out += ", \"stdout\": \"";
  Out += jsonEscape(R.Out);
  Out += "\", \"stderr\": \"";
  Out += jsonEscape(R.Err);
  Out += "\", \"cached\": ";
  Out += CacheHit ? "true" : "false";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Request encoding
//===----------------------------------------------------------------------===//

std::string server::encodeCommandRequest(const std::string &IdJson,
                                         const CommandRequest &Command,
                                         int64_t DeadlineMs) {
  JsonWriter W(/*Compact=*/true);
  W.beginObject();
  // The writer cannot splice raw JSON; the id is re-emitted from its
  // parsed form (numbers round-trip through int64).
  if (!IdJson.empty()) {
    if (IdJson.front() == '"') {
      std::string Inner = IdJson.substr(1, IdJson.size() - 2);
      W.key("id").value(Inner);
    } else {
      W.key("id").value(
          static_cast<int64_t>(std::strtoll(IdJson.c_str(), nullptr, 10)));
    }
  }
  W.key("type").value(Command.Command);
  W.key("sources").beginArray();
  for (const SourceFile &S : Command.Sources) {
    W.beginObject();
    W.key("name").value(S.Name);
    W.key("text").value(S.Text);
    W.endObject();
  }
  W.endArray();
  const CommandOptions &O = Command.Opts;
  W.key("options").beginObject();
  if (!O.TermText.empty())
    W.key("term").value(O.TermText);
  W.key("depth").value(O.Depth);
  W.key("dynamic").value(O.DynamicDepth);
  W.key("jobs").value(O.Jobs);
  W.key("engine").value(O.CompileEngine ? "compiled" : "interp");
  W.key("egraph").value(O.EGraph == EqSatMode::On    ? "on"
                        : O.EGraph == EqSatMode::Off ? "off"
                                                     : "auto");
  W.key("json").value(O.Json);
  W.key("werror").value(O.WarningsAsErrors);
  if (O.MaxSteps != 0)
    W.key("maxSteps").value(O.MaxSteps);
  if (!O.AbstractSpec.empty())
    W.key("abstract").value(O.AbstractSpec);
  if (!O.RepSort.empty())
    W.key("repSort").value(O.RepSort);
  if (!O.PhiName.empty())
    W.key("phi").value(O.PhiName);
  if (!O.OpMap.empty()) {
    W.key("map").beginObject();
    for (const auto &[Abstract, Impl] : O.OpMap)
      W.key(Abstract).value(Impl);
    W.endObject();
  }
  if (!O.InvariantName.empty())
    W.key("invariant").value(O.InvariantName);
  if (O.FreeDomain)
    W.key("free").value(true);
  if (O.Homomorphism)
    W.key("hom").value(true);
  W.endObject();
  if (DeadlineMs != 0)
    W.key("deadlineMs").value(static_cast<int64_t>(DeadlineMs));
  W.endObject();
  return W.str() + "\n";
}

std::string server::encodeControlRequest(const std::string &IdJson,
                                         std::string_view Type,
                                         int64_t SleepMs) {
  JsonWriter W(/*Compact=*/true);
  W.beginObject();
  if (!IdJson.empty()) {
    if (IdJson.front() == '"')
      W.key("id").value(IdJson.substr(1, IdJson.size() - 2));
    else
      W.key("id").value(
          static_cast<int64_t>(std::strtoll(IdJson.c_str(), nullptr, 10)));
  }
  W.key("type").value(Type);
  if (SleepMs != 0)
    W.key("sleepMs").value(SleepMs);
  W.endObject();
  return W.str() + "\n";
}
