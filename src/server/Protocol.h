//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `algspec serve` wire protocol: newline-delimited single-line
/// JSON frames, one request object per line, one response object per
/// line. This header is the schema — request decoding and response
/// encoding live here so the server, the client, and the tests agree
/// on every field name and error code. docs/SERVER.md is the prose
/// version of this file.
///
/// A request:
///
///   {"id": 7, "type": "check", "builtins": ["queue"],
///    "sources": [{"name": "q.alg", "text": "spec ..."}],
///    "options": {"json": true, "jobs": 1}, "deadlineMs": 5000}
///
/// A command response:
///
///   {"id": 7, "type": "response", "exit": 0, "stdout": "...",
///    "stderr": "", "cached": true}
///
/// An error response:
///
///   {"id": 7, "type": "error",
///    "error": {"code": "overloaded", "message": "..."}}
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SERVER_PROTOCOL_H
#define ALGSPEC_SERVER_PROTOCOL_H

#include "server/Commands.h"

#include <string>
#include <string_view>

namespace algspec {
namespace server {

/// Structured error codes a response can carry. Every malformed input
/// maps to one of these — a bad frame must never tear down the server.
enum class ErrorCode {
  ParseError,       ///< Frame is not a single well-formed JSON document.
  InvalidRequest,   ///< Well-formed JSON, but not a valid request shape.
  UnknownType,      ///< "type" names no known request type.
  OversizedFrame,   ///< Frame exceeded the server's size bound.
  BadUtf8,          ///< Frame bytes are not well-formed UTF-8.
  Overloaded,       ///< Queue at high-water mark; request rejected.
  DeadlineExceeded, ///< Deadline expired before a worker picked it up.
  ShuttingDown,     ///< Server is draining and accepts no new work.
  Internal,         ///< Server-side failure (always a bug; report it).
};

/// The wire spelling of \p Code ("parse_error", "overloaded", ...).
std::string_view errorCodeName(ErrorCode Code);

/// One decoded request.
struct Request {
  /// The raw JSON spelling of the "id" member (echoed verbatim into
  /// the response); empty when the request carried none.
  std::string IdJson;
  /// "hello", "stats", "sleep", or a servable command name.
  std::string Type;
  /// Filled for command types: builtins are resolved to their embedded
  /// text here, in request order, before file sources — the CLI's load
  /// order.
  CommandRequest Command;
  /// Milliseconds the client allows before the request must have been
  /// dequeued; 0 = no deadline.
  int64_t DeadlineMs = 0;
  /// "sleep" test hook: how long the worker should hold the slot.
  int64_t SleepMs = 0;
};

struct ProtocolError {
  ErrorCode Code = ErrorCode::InvalidRequest;
  std::string Message;
};

/// True for request types handled without touching the worker queue.
inline bool isControlRequest(std::string_view Type) {
  return Type == "hello" || Type == "stats";
}

/// Decodes one frame (already known to be valid UTF-8) into \p Out.
/// On failure fills \p Err with a structured code and returns false;
/// the frame never kills the connection by itself.
bool parseRequest(std::string_view Frame, Request &Out, ProtocolError &Err);

//===----------------------------------------------------------------------===//
// Response encoding. Every function returns one full frame, trailing
// '\n' included.
//===----------------------------------------------------------------------===//

/// {"id": ..., "type": "error", "error": {"code": ..., "message": ...}}
std::string encodeErrorResponse(const std::string &IdJson, ErrorCode Code,
                                std::string_view Message);

/// {"id": ..., "type": "response", "exit": ..., "stdout": ...,
///  "stderr": ..., "cached": ...}
std::string encodeCommandResponse(const std::string &IdJson,
                                  const CommandResult &R, bool CacheHit);

//===----------------------------------------------------------------------===//
// Request encoding (the client side).
//===----------------------------------------------------------------------===//

/// Encodes a command request frame. \p IdJson is spliced verbatim when
/// non-empty (pass e.g. "42" or "\"req-1\"").
std::string encodeCommandRequest(const std::string &IdJson,
                                 const CommandRequest &Command,
                                 int64_t DeadlineMs = 0);

/// Encodes a control request frame ("hello", "stats") or a "sleep"
/// test-hook frame when \p SleepMs is nonzero.
std::string encodeControlRequest(const std::string &IdJson,
                                 std::string_view Type,
                                 int64_t SleepMs = 0);

} // namespace server
} // namespace algspec

#endif // ALGSPEC_SERVER_PROTOCOL_H
