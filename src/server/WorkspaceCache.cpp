//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/WorkspaceCache.h"

using namespace algspec;
using namespace algspec::server;

uint64_t server::hashSources(const std::vector<SourceFile> &Sources) {
  uint64_t Hash = 1469598103934665603ull; // FNV offset basis.
  auto mix = [&Hash](std::string_view Bytes) {
    for (unsigned char C : Bytes) {
      Hash ^= C;
      Hash *= 1099511628211ull; // FNV prime.
    }
  };
  for (const SourceFile &S : Sources) {
    mix(S.Name);
    mix(std::string_view("\x00", 1));
    mix(S.Text);
    mix(std::string_view("\x01", 1));
  }
  return Hash;
}

WorkspaceSlot &CacheEntry::slotFor(size_t WorkerIndex) {
  return Slots.at(WorkerIndex);
}

std::shared_ptr<CacheEntry>
WorkspaceCache::acquire(const std::vector<SourceFile> &Sources,
                        bool &WasHit) {
  uint64_t Hash = hashSources(Sources);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Hash);
  if (It != Map.end()) {
    const std::vector<SourceFile> &Cached = It->second.Entry->sources();
    bool Same = Cached.size() == Sources.size();
    for (size_t I = 0; Same && I != Cached.size(); ++I)
      Same = Cached[I].Name == Sources[I].Name &&
             Cached[I].Text == Sources[I].Text;
    if (Same) {
      ++Stats.Hits;
      Lru.splice(Lru.begin(), Lru, It->second.LruPos);
      WasHit = true;
      return It->second.Entry;
    }
    // Full-source collision under one 64-bit hash: serve a private,
    // unshared entry rather than risk dispatching the wrong specs.
    ++Stats.Misses;
    WasHit = false;
    return std::make_shared<CacheEntry>(Sources, Workers);
  }
  ++Stats.Misses;
  WasHit = false;
  auto Entry = std::make_shared<CacheEntry>(Sources, Workers);
  Lru.push_front(Hash);
  Map.emplace(Hash, MapEntry{Entry, Lru.begin()});
  while (Map.size() > MaxEntries) {
    uint64_t Victim = Lru.back();
    Lru.pop_back();
    Map.erase(Victim);
    ++Stats.Evictions;
  }
  return Entry;
}

CacheStats WorkspaceCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

void WorkspaceCache::noteElaboration() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Elaborations;
}

Workspace *server::workspaceFor(WorkspaceCache &Cache, CacheEntry &Entry,
                                size_t WorkerIndex,
                                std::string &LoadError) {
  WorkspaceSlot &Slot = Entry.slotFor(WorkerIndex);
  if (!Slot.Elaborated) {
    Slot.Elaborated = true;
    Cache.noteElaboration();
    auto WS = std::make_unique<Workspace>();
    std::string Err;
    if (loadSources(*WS, Entry.sources(), Err)) {
      Slot.WS = std::move(WS);
      Slot.BaseEpoch = Slot.WS->context().markEpoch();
    } else {
      Slot.LoadFailed = true;
      Slot.LoadError = std::move(Err);
    }
  }
  if (Slot.LoadFailed) {
    LoadError = Slot.LoadError;
    return nullptr;
  }
  return Slot.WS.get();
}
