//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's cache of pre-elaborated workspaces, keyed by a content
/// hash of the request's ordered (name, text) source list.
///
/// Each cache entry holds one private Workspace *per worker thread*,
/// elaborated lazily from the original source text the first time that
/// worker serves the spec set. Two rules make this safe and exact:
///
///  - Worker i only ever touches slot i, so concurrent requests never
///    share a mutable AlgebraContext — the same isolation discipline as
///    the parallel checkers' per-worker Replicator replicas (which still
///    run *inside* a request whenever it asks for jobs > 1).
///
///  - Slots re-elaborate from the original sources rather than from a
///    replica's canonical re-print, so source locations (lint carets,
///    JSON line/column fields) stay byte-identical to the one-shot CLI,
///    which parsed the same bytes.
///
/// Reuse across requests is sound because every command entry point
/// builds its engines, sessions, and reports fresh per call; the only
/// state that persists in a workspace between requests is the
/// append-only hash-consed term arena, which affects no printed output.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SERVER_WORKSPACECACHE_H
#define ALGSPEC_SERVER_WORKSPACECACHE_H

#include "ast/AlgebraContext.h"
#include "server/Commands.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace algspec {
namespace server {

/// FNV-1a over the ordered (name, text) list, with separators so
/// ("ab","c") and ("a","bc") hash apart.
uint64_t hashSources(const std::vector<SourceFile> &Sources);

/// One worker's private slot inside a cache entry.
struct WorkspaceSlot {
  bool Elaborated = false;
  /// Set when loading the entry's sources failed; LoadError then holds
  /// the CLI-identical stderr text. Failures are cached too — a spec
  /// set that does not parse will not parse on the next request either.
  bool LoadFailed = false;
  std::string LoadError;
  std::unique_ptr<Workspace> WS;
  /// The workspace's arena right after elaboration. Each served request
  /// truncates back to this epoch afterwards, so a warm workspace's
  /// arena is request-rate-proof: terms minted while dispatching (the
  /// rewrite system's renamed-apart rule variables, normalization
  /// scratch) never accumulate across requests.
  ArenaEpoch BaseEpoch;
};

class WorkspaceCache;

/// A pinned cache entry. Entries are handed out as shared_ptr so an
/// eviction never pulls a workspace out from under a running request.
class CacheEntry {
public:
  CacheEntry(std::vector<SourceFile> Sources, size_t Workers)
      : Sources(std::move(Sources)), Slots(Workers) {}

  /// The worker's private slot, elaborating on first use. Only worker
  /// \p WorkerIndex may call this with that index, which is what makes
  /// the call safe without a lock.
  WorkspaceSlot &slotFor(size_t WorkerIndex);

  const std::vector<SourceFile> &sources() const { return Sources; }

private:
  std::vector<SourceFile> Sources;
  std::vector<WorkspaceSlot> Slots;
};

struct CacheStats {
  uint64_t Hits = 0;      ///< Lookup found the entry.
  uint64_t Misses = 0;    ///< Lookup created the entry.
  uint64_t Evictions = 0; ///< Entries dropped at the capacity bound.
  /// Workspaces actually elaborated (one per worker per entry at most;
  /// Hits - (Elaborations - Misses) requests reused a warm workspace).
  uint64_t Elaborations = 0;
};

/// Hash map + LRU list, both guarded by one mutex. The lock covers only
/// entry lookup/creation — elaboration and command dispatch run outside
/// it, on the worker's private slot.
class WorkspaceCache {
public:
  /// \p MaxEntries bounds the cache (LRU eviction); \p Workers fixes
  /// the per-entry slot count.
  WorkspaceCache(size_t MaxEntries, size_t Workers)
      : MaxEntries(MaxEntries ? MaxEntries : 1), Workers(Workers) {}

  /// Finds or creates the entry for \p Sources. Sets \p WasHit to
  /// whether the entry already existed. On a full-source collision
  /// under one hash the cache is bypassed with a fresh unshared entry —
  /// correctness never depends on 64-bit uniqueness.
  std::shared_ptr<CacheEntry> acquire(const std::vector<SourceFile> &Sources,
                                      bool &WasHit);

  CacheStats stats() const;

  /// Called by CacheEntry::slotFor on first elaboration.
  void noteElaboration();

private:
  const size_t MaxEntries;
  const size_t Workers;

  mutable std::mutex Mutex;
  /// Most-recently-used at the front.
  std::list<uint64_t> Lru;
  struct MapEntry {
    std::shared_ptr<CacheEntry> Entry;
    std::list<uint64_t>::iterator LruPos;
  };
  std::unordered_map<uint64_t, MapEntry> Map;
  CacheStats Stats;
};

/// The workspace for \p Entry on worker \p WorkerIndex, elaborated from
/// the original sources if this worker has not seen the entry yet.
/// Returns nullptr when the sources do not load; \p LoadError then
/// holds the CLI-identical diagnostics.
Workspace *workspaceFor(WorkspaceCache &Cache, CacheEntry &Entry,
                        size_t WorkerIndex, std::string &LoadError);

} // namespace server
} // namespace algspec

#endif // ALGSPEC_SERVER_WORKSPACECACHE_H
