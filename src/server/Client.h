//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `algspec client` side of the serve protocol: a one-request
/// round-tripper the CLI subcommand uses, and the stress driver that
/// CI's server smoke and bench_server build on.
///
/// The stress driver is also the protocol's strongest test: it
/// precomputes every expected response *locally* through the very
/// runCommand() path the one-shot CLI uses, then byte-compares each
/// served response against it, and finally reconciles the server's
/// stats counters against the number of requests it sent.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SERVER_CLIENT_H
#define ALGSPEC_SERVER_CLIENT_H

#include "server/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <string>

namespace algspec {
namespace server {

/// One decoded response frame.
struct WireResponse {
  std::string Type; ///< "response", "error", "hello", or "stats".
  int Exit = 0;
  std::string Out;
  std::string Err;
  bool Cached = false;
  std::string ErrorCode;    ///< For "error" responses.
  std::string ErrorMessage; ///< For "error" responses.
  std::string Raw;          ///< The frame as received (no newline).
};

/// Sends \p Frame on \p Sock and reads one response frame.
Result<WireResponse> roundTrip(const Socket &Sock, FrameReader &Reader,
                               std::string_view Frame);

/// Connects, round-trips one frame, disconnects.
Result<WireResponse> requestOnce(const SocketAddress &Addr,
                                 std::string_view Frame,
                                 size_t MaxFrameBytes = 64u << 20);

struct StressOptions {
  unsigned Connections = 8;
  unsigned RequestsPerConnection = 50;
  /// --jobs forwarded in every request (1 keeps the stress from
  /// oversubscribing the server's worker pool with per-request pools).
  unsigned Jobs = 1;
};

struct StressReport {
  uint64_t Sent = 0;
  uint64_t Matched = 0;     ///< Byte-identical to the local CLI result.
  uint64_t Mismatched = 0;
  uint64_t TransportErrors = 0;
  std::string FirstMismatch; ///< Human-readable detail for the first.
  bool StatsReconciled = false;
  std::string StatsDetail;

  bool ok() const {
    return Mismatched == 0 && TransportErrors == 0 && StatsReconciled;
  }
};

/// Runs \p Opts.Connections concurrent connections, each ping-ponging
/// \p Opts.RequestsPerConnection requests drawn from a deterministic
/// mix over the embedded builtin specs (eval, trace, check, lint,
/// analyze, and the paper's section-4 verify). Assumes no other client
/// is talking to the server, since the final step reconciles the
/// server's served/cache counters against this run's request count.
Result<StressReport> runStress(const SocketAddress &Addr,
                               const StressOptions &Opts);

} // namespace server
} // namespace algspec

#endif // ALGSPEC_SERVER_CLIENT_H
