//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "server/Version.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

using namespace algspec;
using namespace algspec::server;

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)),
      NumWorkers(this->Opts.Workers
                     ? this->Opts.Workers
                     : std::max(1u, std::thread::hardware_concurrency())),
      Cache(this->Opts.CacheMaxEntries, NumWorkers) {}

Server::~Server() {
  requestStop();
  wait();
  if (StopPipe[0] >= 0)
    ::close(StopPipe[0]);
  if (StopPipe[1] >= 0)
    ::close(StopPipe[1]);
}

Result<void> Server::start() {
  if (Opts.Listen.empty())
    return makeError("serve needs at least one --listen address");
  if (::pipe(StopPipe) != 0)
    return makeError("cannot create stop pipe");
  for (const SocketAddress &Addr : Opts.Listen) {
    // Announce the *bound* address: for tcp port 0 the resolved
    // ephemeral port, not the requested one, is the useful fact.
    SocketAddress Bound = Addr;
    if (Addr.AddrKind == SocketAddress::Kind::Unix) {
      Result<Socket> L = listenUnix(Addr.Path);
      if (!L)
        return L.error();
      UnixPaths.push_back(Addr.Path);
      Listeners.push_back(L.take());
    } else {
      int Port = 0;
      Result<Socket> L = listenTcp(Addr.Host, Addr.Port, &Port);
      if (!L)
        return L.error();
      if (BoundPort == 0)
        BoundPort = Port;
      Bound.Port = Port;
      Listeners.push_back(L.take());
    }
    if (Opts.Verbose)
      std::fprintf(stderr, "algspec serve: listening on %s\n",
                   Bound.str().c_str());
  }
  for (size_t I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  Acceptor = std::thread([this] { acceptorLoop(); });
  return Result<void>();
}

void Server::requestStop() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining)
      return;
    Draining = true;
  }
  QueueCv.notify_all();
  // Wake the acceptor; a full pipe is fine, one byte suffices.
  if (StopPipe[1] >= 0) {
    unsigned char Byte = 1;
    [[maybe_unused]] ssize_t N = ::write(StopPipe[1], &Byte, 1);
  }
  // Readers blocked in recv() wake with EOF; their connections stay
  // writable so queued responses still go out.
  std::lock_guard<std::mutex> Lock(ThreadsMutex);
  for (const std::shared_ptr<Connection> &Conn : Connections)
    Conn->Sock.shutdownRead();
}

void Server::wait() {
  if (WaitCompleted.exchange(true))
    return;
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ThreadsMutex);
    ToJoin.swap(Readers);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
  Listeners.clear();
  for (const std::string &Path : UnixPaths)
    ::unlink(Path.c_str());
  UnixPaths.clear();
  {
    std::lock_guard<std::mutex> Lock(ThreadsMutex);
    Connections.clear();
  }
  if (Opts.Verbose)
    std::fprintf(stderr, "algspec serve: drained, exiting\n");
}

//===----------------------------------------------------------------------===//
// Acceptor
//===----------------------------------------------------------------------===//

void Server::acceptorLoop() {
  while (true) {
    std::vector<pollfd> Fds;
    for (const Socket &L : Listeners)
      Fds.push_back({L.fd(), POLLIN, 0});
    Fds.push_back({StopPipe[0], POLLIN, 0});
    if (Opts.WatchSignals && SignalWatcher::fd() >= 0)
      Fds.push_back({SignalWatcher::fd(), POLLIN, 0});

    int N = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), -1);
    if (N < 0)
      continue; // EINTR: re-poll; the signal pipe carries the intent.

    size_t ListenerCount = Listeners.size();
    if (Fds[ListenerCount].revents != 0)
      return; // Stop pipe: requestStop() already flipped Draining.
    if (Fds.size() > ListenerCount + 1 &&
        Fds[ListenerCount + 1].revents != 0) {
      (void)SignalWatcher::take();
      requestStop();
      return;
    }
    for (size_t I = 0; I != ListenerCount; ++I) {
      if (Fds[I].revents == 0)
        continue;
      Result<Socket> Accepted = acceptSocket(Listeners[I]);
      if (!Accepted)
        continue;
      ++ConnectionsAccepted;
      auto Conn = std::make_shared<Connection>(Accepted.take());
      {
        std::lock_guard<std::mutex> Lock(ThreadsMutex);
        Connections.push_back(Conn);
        Readers.emplace_back([this, Conn] { readerLoop(Conn); });
      }
      // A connection accepted while the drain was starting may have
      // missed requestStop()'s shutdown sweep; re-check so its reader
      // cannot block in recv() forever and hang the join.
      bool IsDraining;
      {
        std::lock_guard<std::mutex> Lock(QueueMutex);
        IsDraining = Draining;
      }
      if (IsDraining)
        Conn->Sock.shutdownRead();
    }
  }
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

void Server::respond(Connection &Conn, std::string_view Frame) {
  std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
  // A peer that disconnected mid-request just loses the response; the
  // reader observes the close independently.
  (void)sendAll(Conn.Sock, Frame);
}

void Server::handleControl(Connection &Conn, const Request &Req) {
  if (Req.Type == "hello") {
    JsonWriter W(/*Compact=*/true);
    W.beginObject();
    W.key("type").value("hello");
    W.key("version").value(gitVersion());
    W.key("build").value(buildType());
    W.key("engine").value(defaultEngineName());
    W.key("workers").value(static_cast<uint64_t>(NumWorkers));
    W.key("queueMax").value(static_cast<uint64_t>(Opts.QueueMax));
    W.key("maxFrameBytes").value(static_cast<uint64_t>(Opts.MaxFrameBytes));
    W.endObject();
    std::string Frame = W.str() + "\n";
    if (!Req.IdJson.empty()) {
      // Splice the echoed id in after the brace (the writer cannot
      // emit raw JSON).
      Frame.insert(1, "\"id\": " + Req.IdJson + ", ");
    }
    respond(Conn, Frame);
    return;
  }
  // stats.
  ServerStatsSnapshot S = statsSnapshot();
  JsonWriter W(/*Compact=*/true);
  W.beginObject();
  W.key("type").value("stats");
  W.key("connectionsAccepted").value(S.ConnectionsAccepted);
  W.key("requestsServed").value(S.RequestsServed);
  W.key("requestsRejected").value(S.RequestsRejected);
  W.key("deadlinesExpired").value(S.DeadlinesExpired);
  W.key("protocolErrors").value(S.ProtocolErrors);
  W.key("queueDepth").value(S.QueueDepth);
  W.key("queueHighWater").value(S.QueueHighWater);
  W.key("cache").beginObject();
  W.key("hits").value(S.Cache.Hits);
  W.key("misses").value(S.Cache.Misses);
  W.key("evictions").value(S.Cache.Evictions);
  W.key("elaborations").value(S.Cache.Elaborations);
  W.endObject();
  W.key("engine").beginObject();
  W.key("steps").value(S.Engine.Steps);
  W.key("cacheHits").value(S.Engine.CacheHits);
  W.key("cacheMisses").value(S.Engine.CacheMisses);
  W.key("evictions").value(S.Engine.Evictions);
  W.key("rebuilds").value(S.Engine.Rebuilds);
  W.key("matchAttempts").value(S.Engine.MatchAttempts);
  W.key("automatonVisits").value(S.Engine.AutomatonVisits);
  W.key("arenaTerms").value(S.Engine.ArenaTerms);
  W.key("arenaHighWater").value(S.Engine.ArenaHighWater);
  W.key("arenaTruncations").value(S.Engine.ArenaTruncations);
  W.key("arenaTermsFreed").value(S.Engine.ArenaTermsFreed);
  W.key("arenaBytesFreed").value(S.Engine.ArenaBytesFreed);
  W.key("egraph").beginObject();
  W.key("classes").value(S.Engine.EGraphClasses);
  W.key("nodes").value(S.Engine.EGraphNodes);
  W.key("merges").value(S.Engine.EGraphMerges);
  W.key("rebuilds").value(S.Engine.EGraphRebuilds);
  W.endObject();
  W.endObject();
  W.key("arena").beginObject();
  W.key("truncations").value(S.Arena.Truncations);
  W.key("termsFreed").value(S.Arena.TermsFreed);
  W.key("bytesFreed").value(S.Arena.BytesFreed);
  W.key("highWaterTerms").value(S.Arena.HighWaterTerms);
  W.endObject();
  W.endObject();
  std::string Frame = W.str() + "\n";
  if (!Req.IdJson.empty())
    Frame.insert(1, "\"id\": " + Req.IdJson + ", ");
  respond(Conn, Frame);
}

void Server::releaseConnection(const std::shared_ptr<Connection> &Conn) {
  std::lock_guard<std::mutex> Lock(ThreadsMutex);
  auto It = std::find(Connections.begin(), Connections.end(), Conn);
  if (It != Connections.end())
    Connections.erase(It);
}

void Server::readerLoop(std::shared_ptr<Connection> Conn) {
  FrameReader Reader(Opts.MaxFrameBytes);
  std::string Frame;
  while (true) {
    FrameStatus Status = Reader.readFrame(Conn->Sock, Frame);
    if (Status == FrameStatus::Eof)
      break;
    if (Status == FrameStatus::Truncated || Status == FrameStatus::Error) {
      // Peer vanished mid-frame; nobody is left to answer.
      ++ProtocolErrors;
      break;
    }
    if (Status == FrameStatus::Oversized) {
      // The stream is out of sync past an oversized frame; answer,
      // then drop the connection.
      ++ProtocolErrors;
      respond(*Conn,
              encodeErrorResponse(
                  "", ErrorCode::OversizedFrame,
                  "frame exceeds " + std::to_string(Opts.MaxFrameBytes) +
                      " bytes"));
      break;
    }
    if (!isValidUtf8(Frame)) {
      // Frame boundaries are still intact, so the connection survives.
      ++ProtocolErrors;
      respond(*Conn, encodeErrorResponse("", ErrorCode::BadUtf8,
                                         "frame is not valid UTF-8"));
      continue;
    }
    Request Req;
    ProtocolError Err;
    if (!parseRequest(Frame, Req, Err)) {
      ++ProtocolErrors;
      respond(*Conn, encodeErrorResponse(Req.IdJson, Err.Code, Err.Message));
      continue;
    }
    if (isControlRequest(Req.Type)) {
      handleControl(*Conn, Req);
      continue;
    }
    if (Req.Type == "sleep" && !Opts.EnableTestHooks) {
      ++ProtocolErrors;
      respond(*Conn,
              encodeErrorResponse(Req.IdJson, ErrorCode::UnknownType,
                                  "unknown request type 'sleep'"));
      continue;
    }
    if (Req.DeadlineMs == 0)
      Req.DeadlineMs = Opts.DefaultDeadlineMs;

    std::string Reject;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      if (Draining) {
        Reject = encodeErrorResponse(Req.IdJson, ErrorCode::ShuttingDown,
                                     "server is draining");
      } else if (Queue.size() >= Opts.QueueMax) {
        ++RequestsRejected;
        Reject = encodeErrorResponse(
            Req.IdJson, ErrorCode::Overloaded,
            "queue at high-water mark (" + std::to_string(Opts.QueueMax) +
                " requests)");
      } else {
        Queue.push_back(
            Job{Conn, std::move(Req), std::chrono::steady_clock::now()});
        uint64_t Depth = Queue.size();
        uint64_t Seen = QueueHighWater.load();
        while (Depth > Seen &&
               !QueueHighWater.compare_exchange_weak(Seen, Depth)) {
        }
      }
    }
    if (!Reject.empty()) {
      respond(*Conn, Reject);
      continue;
    }
    QueueCv.notify_one();
  }
  // Drop the server's reference so the socket closes once any queued
  // jobs for this connection have sent their responses: the peer sees
  // EOF, and a long-lived daemon does not accumulate dead descriptors.
  releaseConnection(Conn);
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::serveJob(size_t WorkerIndex, Job &J) {
  if (J.Req.DeadlineMs > 0) {
    auto Waited = std::chrono::steady_clock::now() - J.Enqueued;
    if (std::chrono::duration_cast<std::chrono::milliseconds>(Waited)
            .count() > J.Req.DeadlineMs) {
      ++DeadlinesExpired;
      respond(*J.Conn,
              encodeErrorResponse(J.Req.IdJson, ErrorCode::DeadlineExceeded,
                                  "request waited past its " +
                                      std::to_string(J.Req.DeadlineMs) +
                                      "ms deadline"));
      return;
    }
  }

  if (J.Req.Type == "sleep") {
    std::this_thread::sleep_for(std::chrono::milliseconds(J.Req.SleepMs));
    CommandResult R;
    // Count before sending: a client that has the response in hand must
    // already see it reflected in a stats request (the stress driver
    // reconciles on exactly this ordering).
    ++RequestsServed;
    respond(*J.Conn,
            encodeCommandResponse(J.Req.IdJson, R, /*CacheHit=*/false));
    return;
  }

  // Clamp the request's fuel to the server-wide cap.
  if (Opts.MaxSteps != 0 && (J.Req.Command.Opts.MaxSteps == 0 ||
                             J.Req.Command.Opts.MaxSteps > Opts.MaxSteps))
    J.Req.Command.Opts.MaxSteps = Opts.MaxSteps;

  bool CacheHit = false;
  std::shared_ptr<CacheEntry> Entry =
      Cache.acquire(J.Req.Command.Sources, CacheHit);
  std::string LoadError;
  Workspace *WS = workspaceFor(Cache, *Entry, WorkerIndex, LoadError);

  CommandResult R;
  TruncationDelta Freed;
  uint64_t PeakTerms = 0;
  if (!WS) {
    // Exactly the one-shot CLI's behavior for sources that do not load:
    // diagnostics on stderr, exit 1.
    R.ExitCode = 1;
    R.Err = LoadError;
  } else {
    R = dispatchCommand(*WS, J.Req.Command);
    // Free this request's scratch terms. Dispatch renames rule
    // variables apart and normalizes into the workspace arena; without
    // the truncation a warm workspace grows with every request served.
    // Truncating back to the post-elaboration epoch also restores the
    // exact state a one-shot CLI run starts from, which is what keeps
    // warm responses byte-identical to cold ones.
    AlgebraContext &Ctx = WS->context();
    Freed = Ctx.truncateToEpoch(Entry->slotFor(WorkerIndex).BaseEpoch);
    PeakTerms = Ctx.arenaStats().HighWaterTerms;
  }
  {
    std::lock_guard<std::mutex> Lock(EngineMutex);
    Engine += R.Engine;
    if (Freed.TermsFreed || Freed.BytesFreed)
      ++Arena.Truncations;
    Arena.TermsFreed += Freed.TermsFreed;
    Arena.BytesFreed += Freed.BytesFreed;
    Arena.HighWaterTerms = std::max(Arena.HighWaterTerms, PeakTerms);
  }
  ++RequestsServed;
  respond(*J.Conn, encodeCommandResponse(J.Req.IdJson, R, CacheHit));
}

void Server::workerLoop(size_t WorkerIndex) {
  while (true) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return !Queue.empty() || Draining; });
      if (Queue.empty())
        return; // Draining and nothing left: done.
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    serveJob(WorkerIndex, J);
  }
}

ServerStatsSnapshot Server::statsSnapshot() {
  ServerStatsSnapshot S;
  S.ConnectionsAccepted = ConnectionsAccepted.load();
  S.RequestsServed = RequestsServed.load();
  S.RequestsRejected = RequestsRejected.load();
  S.DeadlinesExpired = DeadlinesExpired.load();
  S.ProtocolErrors = ProtocolErrors.load();
  S.QueueHighWater = QueueHighWater.load();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    S.QueueDepth = Queue.size();
  }
  S.Cache = Cache.stats();
  {
    std::lock_guard<std::mutex> Lock(EngineMutex);
    S.Engine = Engine;
    S.Arena = Arena;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// serveForever
//===----------------------------------------------------------------------===//

Result<void> server::serveForever(ServerOptions Opts) {
  Opts.WatchSignals = true;
  if (Result<void> R = SignalWatcher::install({SIGTERM, SIGINT}); !R)
    return R;
  Server S(std::move(Opts));
  if (Result<void> R = S.start(); !R)
    return R;
  S.wait();
  return Result<void>();
}
