//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command layer: the one-shot CLI subcommands (check, lint,
/// analyze, eval, trace, verify) as pure functions from a request to
/// captured {exit code, stdout, stderr}.
///
/// Both entry points — `tools/algspec` running a subcommand once, and
/// `algspec serve` dispatching the same subcommand for a network
/// request — call through here, so a served response is byte-identical
/// to the one-shot CLI output *by construction*, not by parallel
/// maintenance of two formatting paths. The server's stress client and
/// tests/ServerTest.cpp pin that identity.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SERVER_COMMANDS_H
#define ALGSPEC_SERVER_COMMANDS_H

#include "core/AlgSpec.h"
#include "egraph/EqSat.h"
#include "rewrite/Engine.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace algspec {
namespace server {

/// One spec buffer: a file the CLI read, a builtin resolved by name, or
/// inline text shipped inside a network request.
struct SourceFile {
  std::string Name; ///< Buffer name for diagnostics ("queue.alg").
  std::string Text; ///< Full spec text.
};

/// The option subset that affects served commands; field defaults match
/// the CLI flags' defaults, so an empty request reproduces a bare CLI
/// invocation.
struct CommandOptions {
  std::string TermText; ///< eval/trace: the term (-e).
  unsigned Depth = 3;   ///< verify: instance depth (-d).
  int DynamicDepth = -1; ///< check: --dynamic depth, -1 = off.
  unsigned Jobs = 0;     ///< 0 = hardware concurrency (--jobs).
  bool CompileEngine = true; ///< --engine compiled|interp.
  /// --egraph on|off|auto: the equality-saturation oracle behind the
  /// check/verify sweeps. Verdicts are byte-identical at any setting;
  /// only the work (and the egraph counters) changes.
  EqSatMode EGraph = EqSatMode::Auto;
  bool Json = false;
  bool WarningsAsErrors = false;
  /// Engine fuel override; 0 keeps EngineOptions' default. The server
  /// clamps this to its own --max-steps cap before dispatch.
  uint64_t MaxSteps = 0;
  // verify options.
  std::string AbstractSpec;
  std::string RepSort;
  std::string PhiName;
  std::vector<std::pair<std::string, std::string>> OpMap;
  std::string InvariantName;
  bool FreeDomain = false;
  bool Homomorphism = false;
};

struct CommandRequest {
  /// "check", "lint", "analyze", "eval", "trace", or "verify".
  std::string Command;
  /// Spec buffers, in load order (the CLI loads builtins, then files).
  std::vector<SourceFile> Sources;
  CommandOptions Opts;
};

struct CommandResult {
  int ExitCode = 0;
  std::string Out; ///< Exactly what the one-shot CLI prints to stdout.
  std::string Err; ///< Exactly what the one-shot CLI prints to stderr.
  /// Rewrite-engine counters aggregated over whatever reports the
  /// command produced (informational; feeds the server's live stats).
  EngineStats Engine;
};

/// True for the commands the dispatcher (and the serve protocol)
/// understands.
bool isServableCommand(std::string_view Command);

/// Resolves an embedded builtin spec by name ("queue", "symboltable",
/// ...); empty view when unknown. Shared by the CLI, the server, and
/// the client so all three agree on the catalogue.
std::string_view builtinSpecText(std::string_view Name);

/// Loads every source into \p WS. On failure returns false and \p Err
/// holds the CLI-identical stderr text (parse diagnostics, or the
/// "no specs loaded" usage error when \p Sources is empty).
bool loadSources(Workspace &WS, const std::vector<SourceFile> &Sources,
                 std::string &Err);

/// Runs \p R.Command against the pre-loaded workspace. The workspace
/// may be reused across calls (the server's session cache does): every
/// command builds its own engines and reports, so outputs do not depend
/// on prior calls.
CommandResult dispatchCommand(Workspace &WS, const CommandRequest &R);

/// Fresh-workspace convenience: load sources, then dispatch. This is
/// the exact one-shot CLI code path (and what the stress client runs
/// locally to precompute expected responses).
CommandResult runCommand(const CommandRequest &R);

} // namespace server
} // namespace algspec

#endif // ALGSPEC_SERVER_COMMANDS_H
