//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build identification for `algspec version` and the serve protocol's
/// hello handshake: the git describe string and build type are stamped
/// in at configure time (src/server/CMakeLists.txt), following the same
/// honesty rule as bench/BenchMain.h — a client talking to a daemon
/// must be able to tell a debug build from a release one.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SERVER_VERSION_H
#define ALGSPEC_SERVER_VERSION_H

#include <string>

namespace algspec {
namespace server {

/// `git describe --always --dirty` at configure time; "unknown" when
/// the tree was built outside git.
std::string gitVersion();

/// CMAKE_BUILD_TYPE lowercased; when empty, falls back to the NDEBUG
/// state ("unspecified-ndebug" / "unspecified-assertions").
std::string buildType();

/// The engine the server dispatches with unless a request overrides it.
inline const char *defaultEngineName() { return "compiled"; }

} // namespace server
} // namespace algspec

#endif // ALGSPEC_SERVER_VERSION_H
