//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The served subcommands, extracted verbatim from the CLI driver. The
/// printf formats are preserved character for character: any edit here
/// changes both the CLI and every server response, and the differential
/// server tests will catch a divergence between the two.
///
//===----------------------------------------------------------------------===//

#include "server/Commands.h"

#include "check/ErrorFlow.h"
#include "support/Json.h"

#include <cstdarg>
#include <cstdio>

using namespace algspec;
using namespace algspec::server;

namespace {

/// printf onto a string: the ported subcommand bodies keep their exact
/// format strings.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string &Out, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  char Stack[512];
  int N = std::vsnprintf(Stack, sizeof(Stack), Fmt, Args);
  va_end(Args);
  if (N < 0) {
    va_end(Copy);
    return;
  }
  if (static_cast<size_t>(N) < sizeof(Stack)) {
    Out.append(Stack, static_cast<size_t>(N));
  } else {
    std::vector<char> Heap(static_cast<size_t>(N) + 1);
    std::vsnprintf(Heap.data(), Heap.size(), Fmt, Copy);
    Out.append(Heap.data(), static_cast<size_t>(N));
  }
  va_end(Copy);
}

const char *severityName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

/// Emits the rewrite-engine counters as `"engine": {...}`. Aggregated
/// over the main engine and every worker replica; informational only —
/// the counters vary with the job count even though the verdicts do not.
void writeEngineStats(JsonWriter &W, const EngineStats &S) {
  W.key("engine").beginObject();
  W.key("steps").value(S.Steps);
  W.key("cacheHits").value(S.CacheHits);
  W.key("cacheMisses").value(S.CacheMisses);
  W.key("evictions").value(S.Evictions);
  W.key("rebuilds").value(S.Rebuilds);
  W.key("matchAttempts").value(S.MatchAttempts);
  W.key("automatonVisits").value(S.AutomatonVisits);
  W.key("arenaTerms").value(S.ArenaTerms);
  W.key("arenaHighWater").value(S.ArenaHighWater);
  W.key("arenaTruncations").value(S.ArenaTruncations);
  W.key("arenaTermsFreed").value(S.ArenaTermsFreed);
  W.key("arenaBytesFreed").value(S.ArenaBytesFreed);
  W.key("egraph").beginObject();
  W.key("classes").value(S.EGraphClasses);
  W.key("nodes").value(S.EGraphNodes);
  W.key("merges").value(S.EGraphMerges);
  W.key("rebuilds").value(S.EGraphRebuilds);
  W.endObject();
  W.endObject();
}

/// Emits the error-flow obligations as `"obligations": [...]`. Shared by
/// analyze and check. The guard-engine counters are emitted separately
/// (analyze appends them after the report) so this block stays
/// byte-identical across build configurations and job counts (CI diffs
/// it against golden files).
void writeObligationsJson(JsonWriter &W, const AlgebraContext &Ctx,
                          const std::vector<DefinednessObligation> &Obs) {
  W.key("obligations").beginArray();
  for (const DefinednessObligation &O : Obs) {
    W.beginObject();
    W.key("spec").value(O.SpecName);
    W.key("op").value(std::string(Ctx.opName(O.Op)));
    W.key("axiom").value(O.AxiomNumber);
    W.key("case").value(printTerm(Ctx, O.CaseLhs));
    W.key("verdict").value(std::string(errorVerdictName(O.Verdict)));
    if (O.ErrorCondition.isValid()) {
      W.key("condition").value(printTerm(Ctx, O.ErrorCondition));
      W.key("exact").value(O.ConditionExact);
    }
    W.key("rendered").value(O.render(Ctx));
    W.endObject();
  }
  W.endArray();
}

/// One operation rendered signature-style ("PUSH : Stack, Item -> Stack")
/// so the RPO precedence in a report is reproducible from the JSON alone:
/// overloaded names stay distinguishable by their domains.
std::string opSignature(const AlgebraContext &Ctx, OpId Op) {
  const OpInfo &Info = Ctx.op(Op);
  std::string Out(Ctx.opName(Op));
  Out += " : ";
  for (size_t I = 0; I != Info.ArgSorts.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Ctx.sortName(Info.ArgSorts[I]);
  }
  if (!Info.ArgSorts.empty())
    Out += ' ';
  Out += "-> ";
  Out += Ctx.sortName(Info.ResultSort);
  return Out;
}

/// Emits one join certificate trace as an array of rule-application
/// steps.
void writeJoinTrace(JsonWriter &W, const AlgebraContext &Ctx,
                    const char *Key, const std::vector<JoinStep> &Trace) {
  W.key(Key).beginArray();
  for (const JoinStep &Step : Trace) {
    W.beginObject();
    W.key("before").value(printTerm(Ctx, Step.Before));
    W.key("after").value(printTerm(Ctx, Step.After));
    W.key("spec").value(Step.SpecName);
    W.key("axiom").value(Step.AxiomNumber);
    W.endObject();
  }
  W.endArray();
}

/// Emits the convergence certificate as `"convergence": {...}`. Shared
/// by check and analyze. Deliberately free of engine counters: the
/// certifier is serial and deterministic, so this block is byte-identical
/// across runs, job counts, and build configurations (CI diffs it against
/// golden files). The RPO precedence makes every certificate replayable
/// from the report alone.
void writeConvergenceJson(JsonWriter &W, const AlgebraContext &Ctx,
                          const ConvergenceReport &Conv) {
  W.key("convergence").beginObject();
  W.key("verdict").value(
      std::string(convergenceVerdictName(Conv.Overall)));
  if (!Conv.Obstruction.empty())
    W.key("obstruction").value(Conv.Obstruction);
  W.key("perSpec").beginArray();
  for (const SpecConvergence &SC : Conv.PerSpec) {
    W.beginObject();
    W.key("spec").value(SC.SpecName);
    W.key("verdict").value(std::string(convergenceVerdictName(SC.Verdict)));
    W.key("leftLinear").value(SC.LeftLinear);
    W.key("terminationProved").value(SC.TerminationProved);
    W.key("pairsExamined").value(SC.PairsExamined);
    W.key("pairsJoined").value(SC.PairsJoined);
    W.key("pairsByCases").value(SC.PairsByCases);
    if (!SC.Obstruction.empty())
      W.key("obstruction").value(SC.Obstruction);
    W.endObject();
  }
  W.endArray();
  W.key("criticalPairs").beginArray();
  for (const CriticalPair &P : Conv.Pairs) {
    W.beginObject();
    W.key("specA").value(P.SpecA);
    W.key("axiomA").value(P.AxiomA);
    W.key("specB").value(P.SpecB);
    W.key("axiomB").value(P.AxiomB);
    W.key("peak").value(printTerm(Ctx, P.Peak));
    W.key("reductA").value(printTerm(Ctx, P.ReductA));
    W.key("reductB").value(printTerm(Ctx, P.ReductB));
    W.key("normA").value(printTerm(Ctx, P.NormA));
    W.key("normB").value(printTerm(Ctx, P.NormB));
    W.key("status").value(std::string(pairStatusName(P.Status)));
    W.key("caseSplits").value(P.CaseSplits);
    if (!P.Note.empty())
      W.key("note").value(P.Note);
    writeJoinTrace(W, Ctx, "traceA", P.TraceA);
    writeJoinTrace(W, Ctx, "traceB", P.TraceB);
    W.endObject();
  }
  W.endArray();
  W.key("nonLeftLinear").beginArray();
  for (const NonLeftLinearRule &N : Conv.NonLeftLinear) {
    W.beginObject();
    W.key("spec").value(N.SpecName);
    W.key("axiom").value(N.AxiomNumber);
    W.key("variable").value(N.Variable);
    W.endObject();
  }
  W.endArray();
  W.key("rpoPrecedence").beginArray();
  for (OpId Op : Conv.Termination.Precedence)
    W.value(opSignature(Ctx, Op));
  W.endArray();
  W.key("caveats").beginArray();
  for (const std::string &Caveat : Conv.Caveats)
    W.value(Caveat);
  W.endArray();
  W.endObject();
}

/// Emits the static sufficient-completeness certificate as
/// `"exhaustiveness": {...}`. Shared by check and analyze. Like the
/// convergence block it carries no engine counters: the certifier is
/// serial and deterministic, so the block is byte-identical across runs,
/// job counts, and build configurations, and every verdict is replayable
/// from the recorded pattern-matrix rows alone.
void writeExhaustivenessJson(JsonWriter &W, const AlgebraContext &Ctx,
                             const ExhaustivenessReport &Exh) {
  W.key("exhaustiveness").beginObject();
  W.key("verdict").value(std::string(coverageVerdictName(Exh.Overall)));
  if (!Exh.Obstruction.empty())
    W.key("obstruction").value(Exh.Obstruction);
  W.key("perSpec").beginArray();
  for (const SpecExhaustiveness &SE : Exh.PerSpec) {
    W.beginObject();
    W.key("spec").value(SE.SpecName);
    W.key("verdict").value(std::string(coverageVerdictName(SE.Verdict)));
    W.key("terminationProved").value(SE.TerminationProved);
    W.key("guardsDecided").value(SE.GuardsDecided);
    W.key("closureOps").value(SE.ClosureOps);
    W.key("opsComplete").value(SE.OpsComplete);
    if (!SE.Obstruction.empty())
      W.key("obstruction").value(SE.Obstruction);
    W.endObject();
  }
  W.endArray();
  W.key("operations").beginArray();
  for (const OpExhaustiveness &OE : Exh.PerOp) {
    W.beginObject();
    W.key("spec").value(OE.SpecName);
    W.key("op").value(opSignature(Ctx, OE.Op));
    W.key("verdict").value(std::string(coverageVerdictName(OE.Verdict)));
    W.key("rules").value(OE.Rules);
    W.key("matrixRows").value(OE.MatrixRows);
    W.key("rows").beginArray();
    for (const OpExhaustiveness::MatrixRow &Row : OE.RowsUsed) {
      W.beginObject();
      W.key("spec").value(Row.SpecName);
      W.key("axiom").value(Row.AxiomNumber);
      W.key("lhs").value(printTerm(Ctx, Row.Lhs));
      W.endObject();
    }
    W.endArray();
    if (OE.Witness.isValid())
      W.key("witness").value(printTerm(Ctx, OE.Witness));
    if (!OE.Obstruction.empty())
      W.key("obstruction").value(OE.Obstruction);
    W.endObject();
  }
  W.endArray();
  W.key("shadowed").beginArray();
  for (const ShadowedAxiom &SA : Exh.Shadowed) {
    W.beginObject();
    W.key("spec").value(SA.SpecName);
    W.key("axiom").value(SA.AxiomNumber);
    W.key("op").value(std::string(Ctx.opName(SA.Op)));
    W.key("shadowedBy").beginArray();
    for (const std::string &By : SA.ShadowedBy)
      W.value(By);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.key("caveats").beginArray();
  for (const std::string &Caveat : Exh.Caveats)
    W.value(Caveat);
  W.endArray();
  W.endObject();
}

/// The engine configuration a request asks for: the CLI's --engine knob
/// plus the server-side fuel clamp (0 keeps the engine default, so bare
/// CLI invocations are unchanged).
EngineOptions engineOptions(const CommandOptions &Opts) {
  EngineOptions Eng;
  Eng.Compile = Opts.CompileEngine;
  if (Opts.MaxSteps != 0)
    Eng.MaxSteps = Opts.MaxSteps;
  return Eng;
}

void runCheck(Workspace &WS, const CommandOptions &Opts, CommandResult &R) {
  bool AllGood = true;
  TerminationReport Term = WS.termination();
  ParallelOptions Par;
  Par.Jobs = Opts.Jobs;
  EngineOptions Eng = engineOptions(Opts);
  // One static certificate serves the whole run: the report block below
  // and the dynamic sweeps, which are skipped per spec when the
  // certificate covers that spec. Informative only — a spec whose
  // coverage stays `unknown` (an honest obstruction, not a defect) must
  // not fail the check.
  ExhaustivenessReport Exh = WS.exhaustiveness(Eng);

  if (Opts.Json) {
    JsonWriter W;
    W.beginObject();
    W.key("specs").beginArray();
    for (const Spec &S : WS.specs()) {
      CompletenessReport Report = WS.checkComplete(S);
      AllGood &= Report.SufficientlyComplete;
      W.beginObject();
      W.key("name").value(S.name());
      W.key("operations").value(S.operations().size());
      W.key("axioms").value(S.axioms().size());
      W.key("sufficientlyComplete").value(Report.SufficientlyComplete);
      W.key("missing").beginArray();
      for (const MissingCase &M : Report.Missing)
        W.value(printTerm(WS.context(), M.SuggestedLhs));
      W.endArray();
      W.key("caveats").beginArray();
      for (const std::string &Caveat : Report.Caveats)
        W.value(Caveat);
      W.endArray();
      W.key("terminationProved").value(Term.provedFor(S.name()));
      if (Opts.DynamicDepth > 0) {
        CompletenessReport Dynamic = checkCompletenessDynamic(
            WS.context(), S, WS.specPointers(),
            static_cast<unsigned>(Opts.DynamicDepth), EnumeratorOptions(),
            Par, Eng, &Exh);
        AllGood &= Dynamic.SufficientlyComplete;
        R.Engine += Dynamic.Engine;
        W.key("dynamic").beginObject();
        W.key("depth").value(Opts.DynamicDepth);
        W.key("sufficientlyComplete").value(Dynamic.SufficientlyComplete);
        W.key("provenComplete").value(!Dynamic.ProvenBy.empty());
        if (!Dynamic.ProvenBy.empty())
          W.key("provenBy").value(Dynamic.ProvenBy);
        W.key("stuck").beginArray();
        for (const MissingCase &M : Dynamic.Missing)
          W.value(printTerm(WS.context(), M.SuggestedLhs));
        W.endArray();
        W.key("caveats").beginArray();
        for (const std::string &Caveat : Dynamic.Caveats)
          W.value(Caveat);
        W.endArray();
        writeEngineStats(W, Dynamic.Engine);
        W.endObject();
      }
      W.endObject();
    }
    W.endArray();
    writeExhaustivenessJson(W, WS.context(), Exh);
    // One certificate serves both the report and the consistency
    // checker (which skips its sweep when the certificate holds).
    ConvergenceReport Conv = WS.convergence(Eng);
    writeConvergenceJson(W, WS.context(), Conv);
    ConsistencyReport Consistency =
        checkConsistency(WS.context(), WS.specPointers(), 2,
                         EnumeratorOptions(), Par, Eng, &Conv, Opts.EGraph);
    AllGood &= Consistency.Consistent;
    R.Engine += Consistency.Engine;
    W.key("consistency").beginObject();
    W.key("consistent").value(Consistency.Consistent);
    W.key("provenConsistent").value(!Consistency.ProvenBy.empty());
    if (!Consistency.ProvenBy.empty())
      W.key("provenBy").value(Consistency.ProvenBy);
    W.key("contradictions").value(Consistency.Contradictions.size());
    writeEngineStats(W, Consistency.Engine);
    W.endObject();
    ErrorFlowReport Flow =
        analyzeErrorFlow(WS.context(), WS.specPointers(), Eng);
    R.Engine += Flow.Engine;
    writeObligationsJson(W, WS.context(), Flow.Obligations);
    W.endObject();
    appendf(R.Out, "%s\n", W.str().c_str());
    R.ExitCode = AllGood ? 0 : 1;
    return;
  }

  for (const Spec &S : WS.specs()) {
    CompletenessReport Report = WS.checkComplete(S);
    appendf(R.Out, "spec '%s': %zu operations, %zu axioms\n",
            S.name().c_str(), S.operations().size(), S.axioms().size());
    appendf(R.Out, "  sufficient completeness: %s\n",
            Report.SufficientlyComplete ? "yes" : "NO");
    if (!Report.SufficientlyComplete) {
      AllGood = false;
      appendf(R.Out, "%s", Report.renderPrompt(WS.context()).c_str());
    }
    for (const std::string &Caveat : Report.Caveats)
      appendf(R.Out, "  note: %s\n", Caveat.c_str());
    // A proved spec terminates under any strategy, so the engine's fuel
    // bound is no longer a caveat of its verdicts.
    if (Term.provedFor(S.name())) {
      appendf(R.Out, "  termination: proved unconditionally (recursive "
                     "path ordering)\n");
    } else {
      appendf(R.Out, "  termination: not proved\n");
      appendf(R.Out, "  note: normalization relies on the rewrite "
                     "engine's fuel bound\n");
    }
    if (Opts.DynamicDepth > 0) {
      CompletenessReport Dynamic = checkCompletenessDynamic(
          WS.context(), S, WS.specPointers(),
          static_cast<unsigned>(Opts.DynamicDepth), EnumeratorOptions(),
          Par, Eng, &Exh);
      if (!Dynamic.ProvenBy.empty())
        appendf(R.Out, "  dynamic check (depth %d): skipped — %s\n",
                Opts.DynamicDepth, Dynamic.ProvenBy.c_str());
      else
        appendf(R.Out, "  dynamic check (depth %d): %zu stuck term(s)\n",
                Opts.DynamicDepth, Dynamic.Missing.size());
      AllGood &= Dynamic.SufficientlyComplete;
      R.Engine += Dynamic.Engine;
    }
  }
  appendf(R.Out, "%s", Exh.render(WS.context()).c_str());
  ConvergenceReport Conv = WS.convergence(Eng);
  appendf(R.Out, "%s", Conv.render(WS.context()).c_str());
  ConsistencyReport Consistency =
      checkConsistency(WS.context(), WS.specPointers(), 2,
                       EnumeratorOptions(), Par, Eng, &Conv, Opts.EGraph);
  appendf(R.Out, "consistency: %s",
          Consistency.render(WS.context()).c_str());
  AllGood &= Consistency.Consistent;
  R.Engine += Consistency.Engine;
  ErrorFlowReport Flow =
      analyzeErrorFlow(WS.context(), WS.specPointers(), Eng);
  R.Engine += Flow.Engine;
  if (!Flow.Obligations.empty()) {
    appendf(R.Out, "definedness obligations:\n");
    for (const DefinednessObligation &O : Flow.Obligations)
      appendf(R.Out, "  %s: %s\n", O.SpecName.c_str(),
              O.render(WS.context()).c_str());
  }
  R.ExitCode = AllGood ? 0 : 1;
}

std::string renderLintJson(const LintReport &Report,
                           const TerminationReport &Term) {
  JsonWriter W;
  W.beginObject();
  W.key("findings").beginArray();
  for (const LintFinding &F : Report.Findings) {
    W.beginObject();
    W.key("rule").value(F.Rule);
    W.key("severity").value(severityName(F.Kind));
    W.key("spec").value(F.SpecName);
    // Programmatically built specs have no source location; omit the
    // fields instead of emitting a bogus 0:0.
    if (F.Loc.isValid()) {
      W.key("line").value(F.Loc.line());
      W.key("column").value(F.Loc.column());
    }
    W.key("message").value(F.Message);
    if (!F.FixIt.empty())
      W.key("fixit").value(F.FixIt);
    W.endObject();
  }
  W.endArray();
  W.key("termination").beginArray();
  for (const SpecTermination &ST : Term.PerSpec) {
    W.beginObject();
    W.key("spec").value(ST.SpecName);
    W.key("proved").value(ST.Proved);
    W.endObject();
  }
  W.endArray();
  W.key("terminationFailures").beginArray();
  for (const TerminationFailure &F : Term.Failures) {
    W.beginObject();
    W.key("spec").value(F.SpecName);
    W.key("axiom").value(F.AxiomNumber);
    W.key("reason").value(F.Reason);
    W.endObject();
  }
  W.endArray();
  W.key("errors").value(Report.errorCount());
  W.key("warnings").value(Report.warningCount());
  W.endObject();
  return W.str();
}

void runLint(Workspace &WS, const CommandOptions &Opts, CommandResult &R) {
  LintOptions LOpts;
  LOpts.WarningsAsErrors = Opts.WarningsAsErrors;
  LintReport Report = WS.lint();
  TerminationReport Term = WS.termination();
  if (Opts.Json) {
    appendf(R.Out, "%s\n", renderLintJson(Report, Term).c_str());
  } else {
    appendf(R.Out, "%s", WS.renderLint(Report).c_str());
    appendf(R.Out, "%s", Term.render(WS.context()).c_str());
    if (Report.clean())
      appendf(R.Out, "lint: no findings.\n");
    else
      appendf(R.Out, "%u error(s), %u warning(s) generated.\n",
              Report.errorCount(), Report.warningCount());
  }
  // Termination verdicts inform but do not gate: an unproved spec may
  // still terminate under the engine's strategy (RPO is incomplete).
  R.ExitCode = Report.failed(LOpts) ? 1 : 0;
}

/// `analyze`: the static analyses on their own — error-flow summaries,
/// definedness obligations, the convergence certificate, and the
/// analysis-backed lint rules.
void runAnalyze(Workspace &WS, const CommandOptions &Opts,
                CommandResult &R) {
  EngineOptions Eng = engineOptions(Opts);
  ErrorFlowReport Report =
      analyzeErrorFlow(WS.context(), WS.specPointers(), Eng);
  R.Engine += Report.Engine;
  ConvergenceOptions COpts;
  COpts.Engine = Eng;
  ConvergenceReport Conv =
      certifyConvergence(WS.context(), WS.specPointers(), COpts);
  ExhaustivenessReport Exh = WS.exhaustiveness(Eng);

  // Only the analysis-backed rules; `algspec lint` runs the full set.
  Linter L;
  L.addPass(makeErrorSwallowedPass());
  L.addPass(makeAlwaysErrorOpPass());
  L.addPass(makeRedundantErrorAxiomPass());
  L.addPass(makeNonLeftLinearLhsPass());
  L.addPass(makeUnjoinableCriticalPairPass());
  L.addPass(makeUnreachableAxiomPass());
  L.addPass(makeNonExhaustiveOpPass());
  LintReport Findings = L.run(WS.context(), WS.specPointers());
  LintOptions LOpts;
  LOpts.WarningsAsErrors = Opts.WarningsAsErrors;

  if (Opts.Json) {
    JsonWriter W;
    W.beginObject();
    W.key("summaries").beginArray();
    for (const OpSummary &Sum : Report.Summaries) {
      W.beginObject();
      W.key("spec").value(Sum.SpecName);
      W.key("op").value(std::string(WS.context().opName(Sum.Op)));
      W.key("overall").value(std::string(errorVerdictName(Sum.Overall)));
      W.key("cases").beginArray();
      for (const ErrorCase &C : Sum.Cases) {
        W.beginObject();
        W.key("axiom").value(C.AxiomNumber);
        W.key("lhs").value(printTerm(WS.context(), C.Lhs));
        W.key("verdict").value(std::string(errorVerdictName(C.Verdict)));
        if (C.ErrorCondition.isValid()) {
          W.key("condition")
              .value(printTerm(WS.context(), C.ErrorCondition));
          W.key("exact").value(C.ConditionExact);
        }
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    writeObligationsJson(W, WS.context(), Report.Obligations);
    writeConvergenceJson(W, WS.context(), Conv);
    writeExhaustivenessJson(W, WS.context(), Exh);
    W.key("findings").beginArray();
    for (const LintFinding &F : Findings.Findings) {
      W.beginObject();
      W.key("rule").value(F.Rule);
      W.key("severity").value(severityName(F.Kind));
      W.key("spec").value(F.SpecName);
      if (F.Loc.isValid()) {
        W.key("line").value(F.Loc.line());
        W.key("column").value(F.Loc.column());
      }
      W.key("message").value(F.Message);
      if (!F.FixIt.empty())
        W.key("fixit").value(F.FixIt);
      W.endObject();
    }
    W.endArray();
    W.key("caveats").beginArray();
    for (const std::string &Caveat : Report.Caveats)
      W.value(Caveat);
    W.endArray();
    // The guard engine is serial and visits operations in declaration
    // order, so these counters — unlike check/verify's — are identical
    // at any --jobs and across build configurations; goldens may pin
    // them (engine choice still changes the engine-specific counters).
    writeEngineStats(W, Report.Engine);
    W.endObject();
    appendf(R.Out, "%s\n", W.str().c_str());
  } else {
    appendf(R.Out, "%s", Report.render(WS.context()).c_str());
    appendf(R.Out, "%s", Conv.render(WS.context()).c_str());
    appendf(R.Out, "%s", Exh.render(WS.context()).c_str());
    if (!Findings.clean())
      appendf(R.Out, "%s", WS.renderLint(Findings).c_str());
  }
  R.ExitCode = Findings.failed(LOpts) ? 1 : 0;
}

void runEval(Workspace &WS, const CommandOptions &Opts, bool Trace,
             CommandResult &R) {
  if (Opts.TermText.empty()) {
    appendf(R.Err, "error: eval/trace need -e <term>\n");
    R.ExitCode = 2;
    return;
  }
  EngineOptions EngineOpts = engineOptions(Opts);
  EngineOpts.KeepTrace = Trace;
  auto SessionOrErr = WS.session(EngineOpts);
  if (!SessionOrErr) {
    appendf(R.Err, "%s\n", SessionOrErr.error().message().c_str());
    R.ExitCode = 1;
    return;
  }
  Session S = SessionOrErr.take();
  Result<TermId> Term = parseTermText(WS.context(), Opts.TermText);
  if (!Term) {
    appendf(R.Err, "%s", Term.error().message().c_str());
    R.ExitCode = 1;
    return;
  }
  Result<TermId> Normal = S.engine().normalize(*Term);
  R.Engine += S.stats();
  if (!Normal) {
    appendf(R.Err, "error: %s\n", Normal.error().message().c_str());
    R.ExitCode = 1;
    return;
  }
  if (Trace)
    for (const TraceStep &Step : S.engine().trace())
      appendf(R.Out, "%s ~> %s  [axiom %u of %s]\n",
              printTerm(WS.context(), Step.Before).c_str(),
              printTerm(WS.context(), Step.After).c_str(),
              Step.AppliedRule->AxiomNumber,
              Step.AppliedRule->SpecName.c_str());
  appendf(R.Out, "%s\n", printTerm(WS.context(), *Normal).c_str());
  R.ExitCode = 0;
}

void runVerify(Workspace &WS, const CommandOptions &Opts,
               CommandResult &R) {
  if (Opts.AbstractSpec.empty() || Opts.RepSort.empty() ||
      Opts.PhiName.empty() || Opts.OpMap.empty()) {
    appendf(R.Err, "error: verify needs --abstract <spec>, --rep-sort "
                   "<sort>, --phi <op>, and --map ABSTRACT=IMPL pairs\n");
    R.ExitCode = 2;
    return;
  }
  const Spec *Abstract = WS.find(Opts.AbstractSpec);
  if (!Abstract) {
    appendf(R.Err, "error: no loaded spec named '%s'\n",
            Opts.AbstractSpec.c_str());
    R.ExitCode = 1;
    return;
  }

  RepMapping Mapping;
  Mapping.AbstractSort = Abstract->principalSort();
  Mapping.RepSort = WS.context().lookupSort(Opts.RepSort);
  Mapping.Phi = WS.context().lookupOp(Opts.PhiName);
  if (!Mapping.RepSort.isValid() || !Mapping.Phi.isValid()) {
    appendf(R.Err, "error: unknown representation sort or phi\n");
    R.ExitCode = 1;
    return;
  }
  for (const auto &[AbstractName, ImplName] : Opts.OpMap) {
    OpId AbstractOp;
    for (OpId Op : WS.context().lookupOps(AbstractName)) {
      const OpInfo &Info = WS.context().op(Op);
      bool Involves = Info.ResultSort == Mapping.AbstractSort;
      for (SortId S : Info.ArgSorts)
        Involves |= S == Mapping.AbstractSort;
      if (Involves)
        AbstractOp = Op;
    }
    OpId ImplOp = WS.context().lookupOp(ImplName);
    if (!AbstractOp.isValid() || !ImplOp.isValid()) {
      appendf(R.Err, "error: cannot resolve --map %s=%s\n",
              AbstractName.c_str(), ImplName.c_str());
      R.ExitCode = 1;
      return;
    }
    Mapping.OpMap.emplace(AbstractOp, ImplOp);
  }

  VerifyOptions VOpts;
  VOpts.Domain =
      Opts.FreeDomain ? ValueDomain::FreeTerms : ValueDomain::Reachable;
  VOpts.Depth = Opts.Depth;
  if (!Opts.InvariantName.empty()) {
    VOpts.Invariant = WS.context().lookupOp(Opts.InvariantName);
    if (!VOpts.Invariant.isValid()) {
      appendf(R.Err, "error: unknown invariant operation '%s'\n",
              Opts.InvariantName.c_str());
      R.ExitCode = 1;
      return;
    }
  }

  VOpts.Par.Jobs = Opts.Jobs;
  VOpts.Engine = engineOptions(Opts);
  VOpts.EGraph = Opts.EGraph;

  VerifyReport Report =
      Opts.Homomorphism
          ? verifyHomomorphism(WS.context(), *Abstract, WS.specPointers(),
                               Mapping, VOpts)
          : verifyRepresentation(WS.context(), *Abstract,
                                 WS.specPointers(), Mapping, VOpts);
  R.Engine += Report.Engine;
  if (Opts.Json) {
    JsonWriter W;
    W.beginObject();
    W.key("allHold").value(Report.AllHold);
    W.key("decidableEquality").value(Report.DecidableEquality);
    W.key("repValues").value(Report.NumRepValues);
    W.key("verdicts").beginArray();
    for (const AxiomVerdict &V : Report.Verdicts) {
      W.beginObject();
      W.key("number").value(V.AxiomNumber);
      W.key("label").value(V.Label);
      W.key("holds").value(V.Holds);
      W.key("provedSymbolically").value(V.ProvedSymbolically);
      W.key("instancesChecked").value(V.InstancesChecked);
      if (V.Failure) {
        W.key("counterexample").beginObject();
        W.key("lhs").value(printTerm(WS.context(), V.Failure->Lhs));
        W.key("rhs").value(printTerm(WS.context(), V.Failure->Rhs));
        W.key("lhsNormal")
            .value(printTerm(WS.context(), V.Failure->LhsNormal));
        W.key("rhsNormal")
            .value(printTerm(WS.context(), V.Failure->RhsNormal));
        W.key("assignment").value(V.Failure->Assignment);
        W.endObject();
      }
      W.endObject();
    }
    W.endArray();
    W.key("allObligationsDischarged")
        .value(Report.AllObligationsDischarged);
    W.key("obligationVerdicts").beginArray();
    for (const ObligationVerdict &O : Report.Obligations) {
      W.beginObject();
      W.key("callee").value(std::string(WS.context().opName(O.Callee)));
      W.key("calleeSpec").value(O.CalleeSpec);
      W.key("case").value(printTerm(WS.context(), O.CaseLhs));
      if (O.Condition.isValid())
        W.key("condition").value(printTerm(WS.context(), O.Condition));
      W.key("hostSpec").value(O.HostSpec);
      W.key("hostAxiom").value(O.HostAxiom);
      W.key("site").value(printTerm(WS.context(), O.Site));
      W.key("status").value(O.Status == ObligationStatus::Discharged
                                ? "discharged"
                                : "assumed");
      W.key("note").value(O.Note);
      W.endObject();
    }
    W.endArray();
    W.key("caveats").beginArray();
    for (const std::string &Caveat : Report.Caveats)
      W.value(Caveat);
    W.endArray();
    writeEngineStats(W, Report.Engine);
    W.endObject();
    appendf(R.Out, "%s\n", W.str().c_str());
  } else {
    appendf(R.Out, "%s", Report.render(WS.context()).c_str());
  }
  R.ExitCode = Report.AllHold ? 0 : 1;
}

} // namespace

bool algspec::server::isServableCommand(std::string_view Command) {
  return Command == "check" || Command == "lint" || Command == "analyze" ||
         Command == "eval" || Command == "trace" || Command == "verify";
}

std::string_view algspec::server::builtinSpecText(std::string_view Name) {
  if (Name == "queue")
    return specs::QueueAlg;
  if (Name == "symboltable")
    return specs::SymboltableAlg;
  if (Name == "stackarray")
    return specs::StackArrayAlg;
  if (Name == "knowlist")
    return specs::KnowlistAlg;
  if (Name == "knows_symboltable")
    return specs::KnowsSymboltableAlg;
  if (Name == "nat")
    return specs::NatAlg;
  if (Name == "set")
    return specs::SetAlg;
  if (Name == "list")
    return specs::ListAlg;
  if (Name == "bag")
    return specs::BagAlg;
  if (Name == "bst")
    return specs::BstAlg;
  if (Name == "table")
    return specs::TableAlg;
  if (Name == "boundedqueue")
    return specs::BoundedQueueAlg;
  if (Name == "symboltable_impl")
    return specs::SymboltableImplAlg;
  return {};
}

bool algspec::server::loadSources(Workspace &WS,
                                  const std::vector<SourceFile> &Sources,
                                  std::string &Err) {
  for (const SourceFile &Source : Sources) {
    if (Result<void> R = WS.load(Source.Text, Source.Name); !R) {
      appendf(Err, "%s", R.error().message().c_str());
      return false;
    }
  }
  if (WS.specs().empty()) {
    appendf(Err, "error: no specs loaded; pass files or --builtin\n");
    return false;
  }
  return true;
}

CommandResult algspec::server::dispatchCommand(Workspace &WS,
                                               const CommandRequest &R) {
  CommandResult Out;
  if (R.Command == "check")
    runCheck(WS, R.Opts, Out);
  else if (R.Command == "lint")
    runLint(WS, R.Opts, Out);
  else if (R.Command == "analyze")
    runAnalyze(WS, R.Opts, Out);
  else if (R.Command == "eval" || R.Command == "trace")
    runEval(WS, R.Opts, R.Command == "trace", Out);
  else if (R.Command == "verify")
    runVerify(WS, R.Opts, Out);
  else {
    appendf(Out.Err, "error: unknown command '%s'\n", R.Command.c_str());
    Out.ExitCode = 2;
  }
  return Out;
}

CommandResult algspec::server::runCommand(const CommandRequest &R) {
  Workspace WS;
  CommandResult Out;
  if (!loadSources(WS, R.Sources, Out.Err)) {
    Out.ExitCode = 1;
    return Out;
  }
  return dispatchCommand(WS, R);
}
