//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Version.h"

#include <algorithm>
#include <cctype>

using namespace algspec;

std::string server::gitVersion() {
#ifdef ALGSPEC_GIT_DESCRIBE
  std::string V = ALGSPEC_GIT_DESCRIBE;
  if (!V.empty())
    return V;
#endif
  return "unknown";
}

std::string server::buildType() {
#ifdef ALGSPEC_BUILD_TYPE
  std::string Type = ALGSPEC_BUILD_TYPE;
#else
  std::string Type;
#endif
  std::transform(Type.begin(), Type.end(), Type.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (!Type.empty())
    return Type;
#ifdef NDEBUG
  return "unspecified-ndebug";
#else
  return "unspecified-assertions";
#endif
}
