//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PriorityQueue<T>: a binary min-heap implementing the PriorityQueue
/// specification shipped in examples/specs/priority_queue.alg.
///
/// Like the paper's ring buffer, the heap makes Φ⁻¹ one-to-many: the
/// array layout depends on insertion order while the abstract value is
/// just the multiset of pending elements, so operator== compares sorted
/// contents, not the array.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_PRIORITYQUEUE_H
#define ALGSPEC_ADT_PRIORITYQUEUE_H

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace algspec {
namespace adt {

/// Binary min-heap with value semantics.
template <typename T> class PriorityQueue {
public:
  PriorityQueue() = default;

  /// INSERT.
  void insert(T Value) {
    Heap.push_back(std::move(Value));
    siftUp(Heap.size() - 1);
  }

  /// MIN: smallest element; nullopt when empty (the spec's error).
  std::optional<T> min() const {
    if (Heap.empty())
      return std::nullopt;
    return Heap.front();
  }

  /// DELETE_MIN: removes one smallest element; false when empty.
  bool deleteMin() {
    if (Heap.empty())
      return false;
    Heap.front() = std::move(Heap.back());
    Heap.pop_back();
    if (!Heap.empty())
      siftDown(0);
    return true;
  }

  bool isEmpty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  /// Abstract (multiset) equality: the heap layout is representation
  /// detail.
  friend bool operator==(const PriorityQueue &A, const PriorityQueue &B) {
    if (A.Heap.size() != B.Heap.size())
      return false;
    std::vector<T> SA = A.Heap, SB = B.Heap;
    std::sort(SA.begin(), SA.end());
    std::sort(SB.begin(), SB.end());
    return SA == SB;
  }

  /// Physical layout inspection — for the Φ⁻¹ demonstration only.
  const std::vector<T> &rawHeap() const { return Heap; }

private:
  void siftUp(size_t I) {
    while (I != 0) {
      size_t Parent = (I - 1) / 2;
      if (!(Heap[I] < Heap[Parent]))
        return;
      std::swap(Heap[I], Heap[Parent]);
      I = Parent;
    }
  }

  void siftDown(size_t I) {
    while (true) {
      size_t Left = 2 * I + 1, Right = 2 * I + 2, Smallest = I;
      if (Left < Heap.size() && Heap[Left] < Heap[Smallest])
        Smallest = Left;
      if (Right < Heap.size() && Heap[Right] < Heap[Smallest])
        Smallest = Right;
      if (Smallest == I)
        return;
      std::swap(Heap[I], Heap[Smallest]);
      I = Smallest;
    }
  }

  std::vector<T> Heap;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_PRIORITYQUEUE_H
