//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ListSymbolTable<V>: an association-list representation of the same
/// abstract Symboltable type — the textbook alternative the paper argues
/// one should be able to swap in freely.
///
/// One flat vector of (scope-marker | binding) entries, newest last.
/// Retrieval scans backwards; entering/leaving blocks pushes/pops a
/// marker. Cheap block operations, O(total bindings) retrieval — the
/// mirror image of the hash representation's costs, which is exactly the
/// trade-off bench_symtab_reps (experiment E9) measures.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_LISTSYMBOLTABLE_H
#define ALGSPEC_ADT_LISTSYMBOLTABLE_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {
namespace adt {

/// Flat association-list symbol table.
template <typename V> class ListSymbolTable {
public:
  ListSymbolTable() = default;

  void enterBlock() { Entries.push_back(Entry::marker()); }

  bool leaveBlock() {
    for (size_t I = Entries.size(); I != 0; --I) {
      if (Entries[I - 1].IsMarker) {
        Entries.resize(I - 1);
        return true;
      }
    }
    return false; // No open block: the algebra's error.
  }

  void add(std::string_view Id, V Attributes) {
    Entries.push_back(Entry::binding(Id, std::move(Attributes)));
  }

  bool isInBlock(std::string_view Id) const {
    for (size_t I = Entries.size(); I != 0; --I) {
      const Entry &E = Entries[I - 1];
      if (E.IsMarker)
        return false;
      if (E.Id == Id)
        return true;
    }
    return false;
  }

  std::optional<V> retrieve(std::string_view Id) const {
    for (size_t I = Entries.size(); I != 0; --I) {
      const Entry &E = Entries[I - 1];
      if (!E.IsMarker && E.Id == Id)
        return E.Value;
    }
    return std::nullopt;
  }

  size_t depth() const {
    size_t D = 1;
    for (const Entry &E : Entries)
      D += E.IsMarker;
    return D;
  }

private:
  struct Entry {
    bool IsMarker;
    std::string Id;
    V Value;

    static Entry marker() { return Entry{true, {}, {}}; }
    static Entry binding(std::string_view Id, V Value) {
      return Entry{false, std::string(Id), std::move(Value)};
    }
  };

  std::vector<Entry> Entries;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_LISTSYMBOLTABLE_H
