//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stack<T>: the paper's section-4 type Stack as a concrete class.
///
/// The paper implements Stack in PL/I as a pointer to a list of
/// (val, prev) structures; this is the same singly linked representation
/// with C++ ownership. REPLACE — the paper's extensor for updating the
/// top block in place — is replace().
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_STACK_H
#define ALGSPEC_ADT_STACK_H

#include <optional>
#include <utility>

namespace algspec {
namespace adt {

/// LIFO stack over a private singly linked list; deep-copying value
/// semantics.
template <typename T> class Stack {
  struct Node {
    T Value;
    Node *Prev;
  };

public:
  Stack() = default;
  ~Stack() { clear(); }

  Stack(const Stack &Other) { copyFrom(Other); }
  Stack &operator=(const Stack &Other) {
    if (this != &Other) {
      clear();
      copyFrom(Other);
    }
    return *this;
  }
  Stack(Stack &&Other) noexcept
      : Top(std::exchange(Other.Top, nullptr)),
        Size(std::exchange(Other.Size, 0)) {}
  Stack &operator=(Stack &&Other) noexcept {
    if (this != &Other) {
      clear();
      Top = std::exchange(Other.Top, nullptr);
      Size = std::exchange(Other.Size, 0);
    }
    return *this;
  }

  /// PUSH.
  void push(T Value) {
    Top = new Node{std::move(Value), Top};
    ++Size;
  }

  /// POP: false on the empty stack (the algebra's POP(NEWSTACK) = error).
  bool pop() {
    if (!Top)
      return false;
    Node *N = Top;
    Top = Top->Prev;
    delete N;
    --Size;
    return true;
  }

  /// TOP: nullopt on the empty stack.
  std::optional<T> top() const {
    if (!Top)
      return std::nullopt;
    return Top->Value;
  }

  /// Mutable access to the top value (used by the symbol table's ADD',
  /// which updates the current block in place); nullptr when empty.
  T *topMutable() { return Top ? &Top->Value : nullptr; }

  /// REPLACE: swaps the top value; false on the empty stack.
  bool replace(T Value) {
    if (!Top)
      return false;
    Top->Value = std::move(Value);
    return true;
  }

  /// IS_NEWSTACK?.
  bool isEmpty() const { return Top == nullptr; }

  size_t size() const { return Size; }

  /// Read-only traversal from the top of the stack downwards. The
  /// algebraic Stack exposes no iteration; the C++ class may, for its
  /// implementing clients (the symbol table walks scopes inner-to-outer).
  class const_iterator {
  public:
    using value_type = T;
    using reference = const T &;

    reference operator*() const { return Cur->Value; }
    const T *operator->() const { return &Cur->Value; }
    const_iterator &operator++() {
      Cur = Cur->Prev;
      return *this;
    }
    friend bool operator==(const_iterator A, const_iterator B) {
      return A.Cur == B.Cur;
    }

  private:
    friend class Stack;
    explicit const_iterator(const Node *Cur) : Cur(Cur) {}
    const Node *Cur;
  };

  const_iterator begin() const { return const_iterator(Top); }
  const_iterator end() const { return const_iterator(nullptr); }

  friend bool operator==(const Stack &A, const Stack &B) {
    if (A.Size != B.Size)
      return false;
    for (Node *NA = A.Top, *NB = B.Top; NA; NA = NA->Prev, NB = NB->Prev)
      if (!(NA->Value == NB->Value))
        return false;
    return true;
  }

private:
  void clear() {
    while (Top) {
      Node *N = Top;
      Top = Top->Prev;
      delete N;
    }
    Size = 0;
  }

  void copyFrom(const Stack &Other) {
    // Copy preserving order: collect then push bottom-up.
    size_t Count = Other.Size;
    Node const **Nodes = new Node const *[Count];
    size_t I = Count;
    for (Node *N = Other.Top; N; N = N->Prev)
      Nodes[--I] = N;
    for (size_t J = 0; J != Count; ++J)
      push(Nodes[J]->Value);
    delete[] Nodes;
  }

  Node *Top = nullptr;
  size_t Size = 0;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_STACK_H
