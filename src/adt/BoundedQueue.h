//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BoundedQueue<T, N>: the paper's section-4 Bounded Queue example — a
/// ring buffer with a top pointer.
///
/// The paper uses this representation to show that the abstraction
/// function Φ need not have a proper inverse: two programs can leave the
/// buffer in physically different states (different rotation, stale slots
/// from removed elements) that denote the same abstract queue. The
/// class's operator== implements abstract equality; rawSlot()/rawTop()
/// expose the physical state *for the reproduction test only*.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_BOUNDEDQUEUE_H
#define ALGSPEC_ADT_BOUNDEDQUEUE_H

#include <array>
#include <cstddef>
#include <optional>

namespace algspec {
namespace adt {

/// Fixed-capacity FIFO queue over a ring buffer. The paper's example has
/// a maximum length of three; N is a template parameter with that
/// default.
template <typename T, size_t N = 3> class BoundedQueue {
public:
  static_assert(N > 0, "a bounded queue needs capacity");

  BoundedQueue() = default;

  /// ADD_Q: enqueues; returns false (the algebra's error) when full.
  bool add(T Item) {
    if (Size == N)
      return false;
    Slots[(First + Size) % N] = std::move(Item);
    ++Size;
    return true;
  }

  /// REMOVE_Q: drops the oldest element; false when empty. The vacated
  /// slot keeps its stale value — physically observable, abstractly
  /// meaningless.
  bool remove() {
    if (Size == 0)
      return false;
    First = (First + 1) % N;
    --Size;
    return true;
  }

  /// FRONT_Q: the oldest element; nullopt when empty.
  std::optional<T> front() const {
    if (Size == 0)
      return std::nullopt;
    return Slots[First];
  }

  bool isEmpty() const { return Size == 0; }
  bool isFull() const { return Size == N; }
  size_t size() const { return Size; }
  static constexpr size_t capacity() { return N; }

  /// Abstract equality: same elements in the same order, regardless of
  /// where they physically sit in the ring (Φ(a) == Φ(b)).
  friend bool operator==(const BoundedQueue &A, const BoundedQueue &B) {
    if (A.Size != B.Size)
      return false;
    for (size_t I = 0; I != A.Size; ++I)
      if (!(A.Slots[(A.First + I) % N] == B.Slots[(B.First + I) % N]))
        return false;
    return true;
  }

  /// Physical state inspection — only for demonstrating that Φ⁻¹ is
  /// one-to-many; not part of the abstract interface.
  const std::optional<T> &rawSlot(size_t I) const { return Slots[I]; }
  size_t rawFirst() const { return First; }

private:
  std::array<std::optional<T>, N> Slots;
  size_t First = 0;
  size_t Size = 0;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_BOUNDEDQUEUE_H
