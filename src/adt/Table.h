//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table<V>: the concrete implementation of the TableAlg specification —
/// the paper's section-5 suggestion that "a database management system
/// might be completely characterized by an algebraic specification of
/// the various operations available to users", scaled to one keyed
/// table.
///
/// Unlike HashArray (which keeps the full assignment history to mirror
/// the free-constructor reading of the paper's Array), Table stores only
/// the *visible* rows: per-key overwrite is what the TableAlg observers
/// specify, so the map representation is already observationally
/// faithful and operator== is genuine observational equality.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_TABLE_H
#define ALGSPEC_ADT_TABLE_H

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace algspec {
namespace adt {

/// One keyed table with per-key overwrite and value-based selection.
template <typename V> class Table {
public:
  Table() = default;

  /// INSERT_ROW: adds or overwrites the row for \p Key.
  void insertRow(std::string_view Key, V Value) {
    Rows[std::string(Key)] = std::move(Value);
  }

  /// DELETE_ROW: removes the row for \p Key (no-op when absent, like the
  /// spec's DELETE_ROW(EMPTY_TABLE, k) = EMPTY_TABLE).
  void deleteRow(std::string_view Key) { Rows.erase(std::string(Key)); }

  /// LOOKUP: the visible value; nullopt when absent (the spec's error).
  std::optional<V> lookup(std::string_view Key) const {
    auto It = Rows.find(std::string(Key));
    if (It == Rows.end())
      return std::nullopt;
    return It->second;
  }

  /// HAS_ROW?.
  bool hasRow(std::string_view Key) const {
    return Rows.count(std::string(Key)) != 0;
  }

  /// ROW_COUNT: number of visible rows.
  size_t rowCount() const { return Rows.size(); }

  /// SELECT_VAL: the sub-table of rows whose value equals \p Value.
  Table selectVal(const V &Value) const {
    Table Result;
    for (const auto &[Key, Row] : Rows)
      if (Row == Value)
        Result.Rows.emplace(Key, Row);
    return Result;
  }

  /// Observational equality: same visible rows.
  friend bool operator==(const Table &A, const Table &B) {
    return A.Rows == B.Rows;
  }

private:
  std::unordered_map<std::string, V> Rows;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_TABLE_H
