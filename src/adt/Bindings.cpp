//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "adt/Bindings.h"

#include "adt/HashArray.h"
#include "adt/KnowsList.h"
#include "adt/Queue.h"
#include "adt/Stack.h"
#include "adt/SymbolTable.h"
#include "adt/Table.h"
#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "model/ModelBinding.h"

#include <string>
#include <utility>

using namespace algspec;
using namespace algspec::adt;

namespace {

using QueueV = Queue<std::string>;
using ArrayV = HashArray<std::string>;
using StackV = Stack<ArrayV>;
using SymTabV = SymbolTable<std::string>;
using TableV = Table<std::string>;

/// Binds an equality for the user sort \p SortName comparing values as
/// \p T; fails when the sort is not in the context.
template <typename T>
Result<void> bindEq(ModelBinding &B, std::string_view SortName) {
  SortId Sort = B.context().lookupSort(SortName);
  if (!Sort.isValid())
    return makeError("binding requires sort '" + std::string(SortName) +
                     "', which the loaded specs do not declare");
  B.bindEquals(Sort, [](const Value &A, const Value &B2) {
    return A.get<T>() == B2.get<T>();
  });
  return {};
}

/// Rejects \p Mutant unless it is empty or listed in \p Known.
Result<void> checkMutant(std::string_view Mutant,
                         std::span<const MutantInfo> Known) {
  if (Mutant.empty())
    return {};
  for (const MutantInfo &M : Known)
    if (M.Name == Mutant)
      return {};
  return makeError("unknown mutant '" + std::string(Mutant) + "'");
}

//===----------------------------------------------------------------------===//
// Queue (axioms 1-6) against adt::Queue<std::string>
//===----------------------------------------------------------------------===//

constexpr MutantInfo QueueMutants[] = {
    {"remove-lifo", "REMOVE drops the newest element instead of the "
                    "oldest (a LIFO bug)"},
};

Result<void> installQueue(ModelBinding &B, const Spec &S,
                          std::string_view Mutant) {
  if (Result<void> R = checkMutant(Mutant, QueueMutants); !R)
    return R;
  const bool RemoveLifo = Mutant == "remove-lifo";

  if (auto R = B.bindOp(S, "NEW", [](std::span<const Value>) {
        return Value::of(QueueV());
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "ADD", [](std::span<const Value> Args) {
        QueueV Q = Args[0].get<QueueV>();
        Q.add(Args[1].get<std::string>());
        return Value::of(std::move(Q));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "FRONT", [](std::span<const Value> Args) {
        std::optional<std::string> Front = Args[0].get<QueueV>().front();
        return Front ? Value::of(*Front) : Value::error();
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "REMOVE", [RemoveLifo](std::span<const Value> Args) {
        QueueV Q = Args[0].get<QueueV>();
        if (Q.isEmpty())
          return Value::error();
        if (!RemoveLifo) {
          Q.remove();
          return Value::of(std::move(Q));
        }
        // The seeded bug: drop the most recently added element instead.
        QueueV Rebuilt;
        while (Q.size() > 1) {
          Rebuilt.add(*Q.front());
          Q.remove();
        }
        return Value::of(std::move(Rebuilt));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "IS_EMPTY?", [](std::span<const Value> Args) {
        return Value::of(Args[0].get<QueueV>().isEmpty());
      });
      !R)
    return R;
  return bindEq<QueueV>(B, "Queue");
}

//===----------------------------------------------------------------------===//
// Array (axioms 17-20) against adt::HashArray<std::string>
//===----------------------------------------------------------------------===//

Result<void> installArray(ModelBinding &B, const Spec &S,
                          std::string_view Mutant) {
  if (Result<void> R = checkMutant(Mutant, {}); !R)
    return R;
  // 4 buckets so collisions occur even in small campaigns.
  if (auto R = B.bindOp(S, "EMPTY", [](std::span<const Value>) {
        return Value::of(ArrayV(4));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "ASSIGN", [](std::span<const Value> Args) {
        ArrayV A = Args[0].get<ArrayV>();
        A.assign(Args[1].get<std::string>(), Args[2].get<std::string>());
        return Value::of(std::move(A));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "READ", [](std::span<const Value> Args) {
        std::optional<std::string> V =
            Args[0].get<ArrayV>().read(Args[1].get<std::string>());
        return V ? Value::of(*V) : Value::error();
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "IS_UNDEFINED?", [](std::span<const Value> Args) {
        return Value::of(
            Args[0].get<ArrayV>().isUndefined(Args[1].get<std::string>()));
      });
      !R)
    return R;
  return bindEq<ArrayV>(B, "Array");
}

//===----------------------------------------------------------------------===//
// Stack of arrays (axioms 10-16) against adt::Stack<adt::HashArray>
//===----------------------------------------------------------------------===//

constexpr MutantInfo StackMutants[] = {
    {"replace-pops", "REPLACE pops the stack instead of replacing the "
                     "top element"},
};

Result<void> installStack(ModelBinding &B, const Spec &S,
                          std::string_view Mutant) {
  if (Result<void> R = checkMutant(Mutant, StackMutants); !R)
    return R;
  const bool ReplacePops = Mutant == "replace-pops";

  // The Stack spec's element sort is Array: its binding rides along so
  // stack campaigns can evaluate the array arguments.
  if (Result<void> R = installArray(B, S, ""); !R)
    return R;

  if (auto R = B.bindOp(S, "NEWSTACK", [](std::span<const Value>) {
        return Value::of(StackV());
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "PUSH", [](std::span<const Value> Args) {
        StackV S = Args[0].get<StackV>();
        S.push(Args[1].get<ArrayV>());
        return Value::of(std::move(S));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "POP", [](std::span<const Value> Args) {
        StackV S = Args[0].get<StackV>();
        if (!S.pop())
          return Value::error();
        return Value::of(std::move(S));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "TOP", [](std::span<const Value> Args) {
        std::optional<ArrayV> T = Args[0].get<StackV>().top();
        return T ? Value::of(std::move(*T)) : Value::error();
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "IS_NEWSTACK?", [](std::span<const Value> Args) {
        return Value::of(Args[0].get<StackV>().isEmpty());
      });
      !R)
    return R;
  if (auto R = B.bindOp(
          S, "REPLACE", [ReplacePops](std::span<const Value> Args) {
        StackV S = Args[0].get<StackV>();
        if (ReplacePops) {
          // The seeded bug: discard the new top and pop instead.
          if (!S.pop())
            return Value::error();
          return Value::of(std::move(S));
        }
        if (!S.replace(Args[1].get<ArrayV>()))
          return Value::error();
        return Value::of(std::move(S));
      });
      !R)
    return R;
  return bindEq<StackV>(B, "Stack");
}

//===----------------------------------------------------------------------===//
// Symboltable (axioms 1-9) against adt::SymbolTable<std::string>
//===----------------------------------------------------------------------===//

constexpr MutantInfo SymboltableMutants[] = {
    {"retrieve-current-block-only",
     "RETRIEVE searches only the innermost block instead of the whole "
     "table"},
};

Result<void> installSymboltable(ModelBinding &B, const Spec &S,
                                std::string_view Mutant) {
  if (Result<void> R = checkMutant(Mutant, SymboltableMutants); !R)
    return R;
  const bool CurrentBlockOnly = Mutant == "retrieve-current-block-only";

  if (auto R = B.bindOp(S, "INIT", [](std::span<const Value>) {
        return Value::of(SymTabV(4));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "ENTERBLOCK", [](std::span<const Value> Args) {
        SymTabV T = Args[0].get<SymTabV>();
        T.enterBlock();
        return Value::of(std::move(T));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "LEAVEBLOCK", [](std::span<const Value> Args) {
        SymTabV T = Args[0].get<SymTabV>();
        if (!T.leaveBlock())
          return Value::error();
        return Value::of(std::move(T));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "ADD", [](std::span<const Value> Args) {
        SymTabV T = Args[0].get<SymTabV>();
        T.add(Args[1].get<std::string>(), Args[2].get<std::string>());
        return Value::of(std::move(T));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "IS_INBLOCK?", [](std::span<const Value> Args) {
        return Value::of(
            Args[0].get<SymTabV>().isInBlock(Args[1].get<std::string>()));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "RETRIEVE",
                        [CurrentBlockOnly](std::span<const Value> Args) {
                          const SymTabV &T = Args[0].get<SymTabV>();
                          const std::string &Id = Args[1].get<std::string>();
                          // The seeded bug: ignore enclosing blocks.
                          if (CurrentBlockOnly && !T.isInBlock(Id))
                            return Value::error();
                          std::optional<std::string> V = T.retrieve(Id);
                          return V ? Value::of(*V) : Value::error();
                        });
      !R)
    return R;
  return bindEq<SymTabV>(B, "Symboltable");
}

//===----------------------------------------------------------------------===//
// Knowlist against adt::KnowsList
//===----------------------------------------------------------------------===//

Result<void> installKnowlist(ModelBinding &B, const Spec &S,
                             std::string_view Mutant) {
  if (Result<void> R = checkMutant(Mutant, {}); !R)
    return R;
  if (auto R = B.bindOp(S, "CREATE", [](std::span<const Value>) {
        return Value::of(KnowsList());
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "APPEND", [](std::span<const Value> Args) {
        KnowsList K = Args[0].get<KnowsList>();
        K.append(Args[1].get<std::string>());
        return Value::of(std::move(K));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "IS_IN?", [](std::span<const Value> Args) {
        return Value::of(
            Args[0].get<KnowsList>().contains(Args[1].get<std::string>()));
      });
      !R)
    return R;
  return bindEq<KnowsList>(B, "Knowlist");
}

//===----------------------------------------------------------------------===//
// Table (the section-5 database characterization) against adt::Table
//===----------------------------------------------------------------------===//

Result<void> installTable(ModelBinding &B, const Spec &S,
                          std::string_view Mutant) {
  if (Result<void> R = checkMutant(Mutant, {}); !R)
    return R;
  if (auto R = B.bindOp(S, "EMPTY_TABLE", [](std::span<const Value>) {
        return Value::of(TableV());
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "INSERT_ROW", [](std::span<const Value> Args) {
        TableV T = Args[0].get<TableV>();
        T.insertRow(Args[1].get<std::string>(), Args[2].get<std::string>());
        return Value::of(std::move(T));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "DELETE_ROW", [](std::span<const Value> Args) {
        TableV T = Args[0].get<TableV>();
        T.deleteRow(Args[1].get<std::string>());
        return Value::of(std::move(T));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "LOOKUP", [](std::span<const Value> Args) {
        auto V = Args[0].get<TableV>().lookup(Args[1].get<std::string>());
        return V ? Value::of(*V) : Value::error();
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "HAS_ROW?", [](std::span<const Value> Args) {
        return Value::of(
            Args[0].get<TableV>().hasRow(Args[1].get<std::string>()));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "ROW_COUNT", [](std::span<const Value> Args) {
        return Value::of(
            static_cast<int64_t>(Args[0].get<TableV>().rowCount()));
      });
      !R)
    return R;
  if (auto R = B.bindOp(S, "SELECT_VAL", [](std::span<const Value> Args) {
        return Value::of(
            Args[0].get<TableV>().selectVal(Args[1].get<std::string>()));
      });
      !R)
    return R;
  return bindEq<TableV>(B, "Table");
}

const AdtBinding Registry[] = {
    {"Queue", "queue", "adt::Queue<std::string>", QueueMutants,
     installQueue},
    {"Array", "stackarray", "adt::HashArray<std::string>", {},
     installArray},
    {"Stack", "stackarray", "adt::Stack<adt::HashArray<std::string>>",
     StackMutants, installStack},
    {"Symboltable", "symboltable", "adt::SymbolTable<std::string>",
     SymboltableMutants, installSymboltable},
    {"Knowlist", "knowlist", "adt::KnowsList", {}, installKnowlist},
    {"Table", "table", "adt::Table<std::string>", {}, installTable},
};

} // namespace

std::span<const AdtBinding> adt::adtBindings() { return Registry; }

const AdtBinding *adt::findAdtBinding(std::string_view SpecName) {
  for (const AdtBinding &Row : Registry)
    if (Row.SpecName == SpecName)
      return &Row;
  return nullptr;
}
