//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LinearArray<V>: the naive alternative implementation of the paper's
/// type Array — one unhashed association list, newest entry first.
///
/// Same observable behaviour as HashArray (axioms 17-20), different cost
/// profile: O(1) assign, O(entries) read. bench_array_impls (experiment
/// E10) compares the two, making the paper's point that the axioms
/// deliberately leave this choice open.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_LINEARARRAY_H
#define ALGSPEC_ADT_LINEARARRAY_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {
namespace adt {

/// Association-list Array: ASSIGN prepends, READ scans front-to-back.
template <typename V> class LinearArray {
public:
  LinearArray() = default;

  void assign(std::string_view Id, V Value) {
    Entries.insert(Entries.begin(), Entry{std::string(Id), std::move(Value)});
  }

  std::optional<V> read(std::string_view Id) const {
    for (const Entry &E : Entries)
      if (E.Id == Id)
        return E.Value;
    return std::nullopt;
  }

  bool isUndefined(std::string_view Id) const {
    for (const Entry &E : Entries)
      if (E.Id == Id)
        return false;
    return true;
  }

  size_t entryCount() const { return Entries.size(); }

  friend bool operator==(const LinearArray &A, const LinearArray &B) {
    if (A.Entries.size() != B.Entries.size())
      return false;
    for (size_t I = 0; I != A.Entries.size(); ++I)
      if (A.Entries[I].Id != B.Entries[I].Id ||
          !(A.Entries[I].Value == B.Entries[I].Value))
        return false;
    return true;
  }

private:
  struct Entry {
    std::string Id;
    V Value;
  };

  std::vector<Entry> Entries;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_LINEARARRAY_H
