//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KnowsSymbolTable<V>: the paper's adapted Symboltable for a language
/// where a block inherits only the nonlocal identifiers listed in its
/// knows-list. Exactly the ENTERBLOCK-related behaviour differs from
/// SymbolTable<V>, mirroring how only the ENTERBLOCK axioms changed in
/// the adapted specification.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_KNOWSSYMBOLTABLE_H
#define ALGSPEC_ADT_KNOWSSYMBOLTABLE_H

#include "adt/HashArray.h"
#include "adt/KnowsList.h"
#include "adt/Stack.h"

#include <cassert>
#include <optional>
#include <string_view>
#include <utility>

namespace algspec {
namespace adt {

/// Block-structured symbol table with knows-list-restricted inheritance.
template <typename V> class KnowsSymbolTable {
public:
  explicit KnowsSymbolTable(size_t BucketsPerScope = 64)
      : BucketsPerScope(BucketsPerScope) {
    // The outermost scope inherits nothing; its knows-list is unused.
    Scopes.push(Scope{HashArray<V>(BucketsPerScope), KnowsList()});
  }

  /// ENTERBLOCK now takes the block's knows-list (the one signature
  /// change visible outside the module).
  void enterBlock(KnowsList Knows) {
    Scopes.push(Scope{HashArray<V>(BucketsPerScope), std::move(Knows)});
  }

  bool leaveBlock() {
    if (Scopes.size() <= 1)
      return false;
    return Scopes.pop();
  }

  void add(std::string_view Id, V Attributes) {
    Scope *Top = Scopes.topMutable();
    assert(Top && "invariant: at least one scope is always open");
    Top->Bindings.assign(Id, std::move(Attributes));
  }

  bool isInBlock(std::string_view Id) const {
    return !Scopes.begin()->Bindings.isUndefined(Id);
  }

  /// RETRIEVE: local declarations are always visible; each enclosing
  /// scope is consulted only if every crossed block boundary "knows"
  /// \p Id (adapted axiom: RETRIEVE(ENTERBLOCK(symtab, klist), id) =
  /// if IS_IN?(klist, id) then RETRIEVE(symtab, id) else error).
  std::optional<V> retrieve(std::string_view Id) const {
    size_t Remaining = Scopes.size();
    for (const Scope &S : Scopes) {
      if (std::optional<V> Value = S.Bindings.read(Id))
        return Value;
      // Crossing this block's boundary outwards: the knows-list of the
      // block being left decides visibility (except for the outermost
      // scope, which has no boundary above it).
      --Remaining;
      if (Remaining == 0)
        break;
      if (!S.Knows.contains(Id))
        return std::nullopt;
    }
    return std::nullopt;
  }

  size_t depth() const { return Scopes.size(); }

  /// Representation equality; see HashArray::operator== for the caveat.
  friend bool operator==(const KnowsSymbolTable &A,
                         const KnowsSymbolTable &B) {
    return A.Scopes == B.Scopes;
  }

private:
  struct Scope {
    HashArray<V> Bindings;
    KnowsList Knows;

    friend bool operator==(const Scope &A, const Scope &B) {
      return A.Bindings == B.Bindings && A.Knows == B.Knows;
    }
  };

  size_t BucketsPerScope;
  Stack<Scope> Scopes;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_KNOWSSYMBOLTABLE_H
