//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Queue<T>: the paper's section-3 type Queue (of Items) as a concrete
/// C++ class with a private singly linked representation.
///
/// The public operations mirror the algebraic signature exactly
/// (NEW = the constructor, ADD = add, FRONT = front, REMOVE = remove,
/// IS_EMPTY? = isEmpty); boundary conditions surface as std::nullopt /
/// false instead of the algebra's error, and the ModelTester maps between
/// the two. The representation is invisible to clients — the class *is*
/// the information-hiding boundary the paper argues for.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_QUEUE_H
#define ALGSPEC_ADT_QUEUE_H

#include <cassert>
#include <memory>
#include <optional>
#include <utility>

namespace algspec {
namespace adt {

/// FIFO queue over a private singly linked list with head and tail
/// pointers; O(1) add and remove, deep-copying value semantics.
template <typename T> class Queue {
public:
  Queue() = default;
  ~Queue() { clear(); }

  Queue(const Queue &Other) { copyFrom(Other); }
  Queue &operator=(const Queue &Other) {
    if (this != &Other) {
      clear();
      copyFrom(Other);
    }
    return *this;
  }
  Queue(Queue &&Other) noexcept
      : Head(std::exchange(Other.Head, nullptr)),
        Tail(std::exchange(Other.Tail, nullptr)),
        Size(std::exchange(Other.Size, 0)) {}
  Queue &operator=(Queue &&Other) noexcept {
    if (this != &Other) {
      clear();
      Head = std::exchange(Other.Head, nullptr);
      Tail = std::exchange(Other.Tail, nullptr);
      Size = std::exchange(Other.Size, 0);
    }
    return *this;
  }

  /// ADD: enqueues at the back.
  void add(T Item) {
    Node *N = new Node{std::move(Item), nullptr};
    if (Tail)
      Tail->Next = N;
    else
      Head = N;
    Tail = N;
    ++Size;
  }

  /// FRONT: the oldest element; nullopt on the empty queue (the
  /// algebra's FRONT(NEW) = error).
  std::optional<T> front() const {
    if (!Head)
      return std::nullopt;
    return Head->Item;
  }

  /// REMOVE: drops the oldest element; returns false on the empty queue
  /// (the algebra's REMOVE(NEW) = error).
  bool remove() {
    if (!Head)
      return false;
    Node *N = Head;
    Head = Head->Next;
    if (!Head)
      Tail = nullptr;
    delete N;
    --Size;
    return true;
  }

  /// IS_EMPTY?.
  bool isEmpty() const { return Head == nullptr; }

  size_t size() const { return Size; }

  /// Structural equality of the abstract values (element sequences).
  friend bool operator==(const Queue &A, const Queue &B) {
    if (A.Size != B.Size)
      return false;
    for (Node *NA = A.Head, *NB = B.Head; NA; NA = NA->Next, NB = NB->Next)
      if (!(NA->Item == NB->Item))
        return false;
    return true;
  }

private:
  struct Node {
    T Item;
    Node *Next;
  };

  void clear() {
    while (Head) {
      Node *N = Head;
      Head = Head->Next;
      delete N;
    }
    Tail = nullptr;
    Size = 0;
  }

  void copyFrom(const Queue &Other) {
    for (Node *N = Other.Head; N; N = N->Next)
      add(N->Item);
  }

  Node *Head = nullptr;
  Node *Tail = nullptr;
  size_t Size = 0;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_QUEUE_H
