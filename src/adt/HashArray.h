//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HashArray<V>: the paper's section-4 type Array (of attributelists,
/// indexed by Identifier) as a chained hash table.
///
/// The paper's PL/I implementation is a based array of n bucket pointers;
/// ASSIGN allocates an entry and *prepends* it to its bucket, READ scans
/// the bucket and returns the first (most recent) match — so ASSIGN
/// never overwrites, exactly matching the free-constructor reading of
/// axioms 17-20 where the newest assignment shadows older ones. This
/// class keeps those semantics, including the prepend.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_HASHARRAY_H
#define ALGSPEC_ADT_HASHARRAY_H

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace algspec {
namespace adt {

/// Chained hash table from identifiers to values with shadowing
/// assignment history. Deep-copying value semantics.
template <typename V> class HashArray {
public:
  /// \p NumBuckets is the paper's n; small values are legal (and force
  /// collisions, which the tests exploit).
  explicit HashArray(size_t NumBuckets = 64) : Buckets(NumBuckets) {}

  HashArray(const HashArray &Other) : Buckets(Other.Buckets.size()) {
    copyFrom(Other);
  }
  HashArray &operator=(const HashArray &Other) {
    if (this != &Other) {
      clear();
      Buckets.assign(Other.Buckets.size(), nullptr);
      copyFrom(Other);
    }
    return *this;
  }
  HashArray(HashArray &&Other) noexcept
      : Buckets(std::move(Other.Buckets)),
        NumEntries(std::exchange(Other.NumEntries, 0)) {
    Other.Buckets.assign(Buckets.size(), nullptr);
  }
  HashArray &operator=(HashArray &&Other) noexcept {
    if (this != &Other) {
      clear();
      Buckets = std::move(Other.Buckets);
      NumEntries = std::exchange(Other.NumEntries, 0);
      Other.Buckets.assign(Buckets.size(), nullptr);
    }
    return *this;
  }
  ~HashArray() { clear(); }

  /// ASSIGN: prepends a (id, value) entry; older entries for the same
  /// identifier are shadowed, not destroyed.
  void assign(std::string_view Id, V Value) {
    size_t B = bucketOf(Id);
    Buckets[B] = new Entry{std::string(Id), std::move(Value), Buckets[B]};
    ++NumEntries;
  }

  /// READ: the most recent value for \p Id; nullopt when undefined (the
  /// algebra's READ(EMPTY, id) = error).
  std::optional<V> read(std::string_view Id) const {
    for (Entry *E = Buckets[bucketOf(Id)]; E; E = E->Next)
      if (E->Id == Id)
        return E->Value;
    return std::nullopt;
  }

  /// IS_UNDEFINED?.
  bool isUndefined(std::string_view Id) const {
    for (Entry *E = Buckets[bucketOf(Id)]; E; E = E->Next)
      if (E->Id == Id)
        return false;
    return true;
  }

  /// Total entries including shadowed ones (the constructor-term size).
  size_t entryCount() const { return NumEntries; }
  size_t bucketCount() const { return Buckets.size(); }

  /// Visits the visible (unshadowed) bindings in unspecified order.
  template <typename Fn> void forEachVisible(Fn Visit) const {
    std::vector<std::string_view> SeenIds;
    for (Entry *Head : Buckets) {
      for (Entry *E = Head; E; E = E->Next) {
        bool Shadowed = false;
        for (std::string_view Id : SeenIds)
          if (Id == E->Id)
            Shadowed = true;
        if (Shadowed)
          continue;
        SeenIds.push_back(E->Id);
        Visit(std::string_view(E->Id), E->Value);
      }
    }
  }

  /// Representation equality: same bucket structure and the same
  /// assignment history per bucket. Finer than observational equality
  /// (which ignores shadowed entries and assignment order across
  /// distinct identifiers) but exact for values produced by replaying
  /// one ASSIGN sequence — which is what the model tester compares.
  friend bool operator==(const HashArray &A, const HashArray &B) {
    if (A.Buckets.size() != B.Buckets.size() ||
        A.NumEntries != B.NumEntries)
      return false;
    for (size_t I = 0; I != A.Buckets.size(); ++I) {
      Entry *EA = A.Buckets[I], *EB = B.Buckets[I];
      while (EA && EB) {
        if (EA->Id != EB->Id || !(EA->Value == EB->Value))
          return false;
        EA = EA->Next;
        EB = EB->Next;
      }
      if (EA || EB)
        return false;
    }
    return true;
  }

private:
  struct Entry {
    std::string Id;
    V Value;
    Entry *Next;
  };

  size_t bucketOf(std::string_view Id) const {
    return std::hash<std::string_view>()(Id) % Buckets.size();
  }

  void clear() {
    for (Entry *&Head : Buckets) {
      while (Head) {
        Entry *E = Head;
        Head = Head->Next;
        delete E;
      }
    }
    NumEntries = 0;
  }

  void copyFrom(const HashArray &Other) {
    // Preserve per-bucket order (newest first) by copying each chain
    // back-to-front.
    for (size_t B = 0; B != Other.Buckets.size(); ++B) {
      std::vector<const Entry *> Chain;
      for (Entry *E = Other.Buckets[B]; E; E = E->Next)
        Chain.push_back(E);
      for (size_t I = Chain.size(); I != 0; --I) {
        Buckets[B] =
            new Entry{Chain[I - 1]->Id, Chain[I - 1]->Value, Buckets[B]};
        ++NumEntries;
      }
    }
  }

  std::vector<Entry *> Buckets;
  size_t NumEntries = 0;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_HASHARRAY_H
