//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SymbolTable<V>: the paper's section-4 Symboltable, represented exactly
/// as the paper's refinement prescribes — a Stack of (hash) Arrays, one
/// array per open scope.
///
/// The operations mirror the algebraic signature: INIT = the constructor,
/// ENTERBLOCK = enterBlock, LEAVEBLOCK = leaveBlock, ADD = add,
/// IS_INBLOCK? = isInBlock, RETRIEVE = retrieve. Assumption 1 holds by
/// construction: the constructor pushes the outermost scope, and
/// leaveBlock refuses to pop it, so add() never sees an empty stack.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_SYMBOLTABLE_H
#define ALGSPEC_ADT_SYMBOLTABLE_H

#include "adt/HashArray.h"
#include "adt/Stack.h"

#include <cassert>
#include <optional>
#include <string_view>

namespace algspec {
namespace adt {

/// Block-structured symbol table: a stack of hash arrays.
template <typename V> class SymbolTable {
public:
  /// INIT: allocates the table with its outermost scope established.
  explicit SymbolTable(size_t BucketsPerScope = 64)
      : BucketsPerScope(BucketsPerScope) {
    Scopes.push(HashArray<V>(BucketsPerScope));
  }

  /// ENTERBLOCK.
  void enterBlock() { Scopes.push(HashArray<V>(BucketsPerScope)); }

  /// LEAVEBLOCK: discards the most recent scope; false when only the
  /// outermost scope remains (the algebra's LEAVEBLOCK(INIT) = error —
  /// a mismatched "end").
  bool leaveBlock() {
    if (Scopes.size() <= 1)
      return false;
    return Scopes.pop();
  }

  /// ADD: declares \p Id with \p Attributes in the current scope.
  void add(std::string_view Id, V Attributes) {
    HashArray<V> *Top = Scopes.topMutable();
    assert(Top && "invariant: at least one scope is always open");
    Top->assign(Id, std::move(Attributes));
  }

  /// IS_INBLOCK?: declared in the *current* scope? (Used to reject
  /// duplicate declarations.)
  bool isInBlock(std::string_view Id) const {
    return !Scopes.begin()->isUndefined(Id);
  }

  /// RETRIEVE: attributes from the most local scope declaring \p Id;
  /// nullopt when undeclared anywhere (the algebra's error).
  std::optional<V> retrieve(std::string_view Id) const {
    for (const HashArray<V> &Scope : Scopes)
      if (std::optional<V> Value = Scope.read(Id))
        return Value;
    return std::nullopt;
  }

  /// Current block-nesting depth (1 = outermost scope only).
  size_t depth() const { return Scopes.size(); }

  /// Representation equality (scope stacks with their assignment
  /// histories); see HashArray::operator== for the caveat.
  friend bool operator==(const SymbolTable &A, const SymbolTable &B) {
    return A.Scopes == B.Scopes;
  }

private:
  size_t BucketsPerScope;
  Stack<HashArray<V>> Scopes;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_SYMBOLTABLE_H
