//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KnowsList: the paper's section-4 Knowlist — the list of nonlocal
/// identifiers a block declares it will use. "The implementation of
/// abstract type Knowlist is trivial," says the paper; it is.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_KNOWSLIST_H
#define ALGSPEC_ADT_KNOWSLIST_H

#include <string>
#include <string_view>
#include <vector>

namespace algspec {
namespace adt {

/// CREATE / APPEND / IS_IN? over a private vector.
class KnowsList {
public:
  KnowsList() = default;

  /// APPEND.
  void append(std::string_view Id) { Ids.emplace_back(Id); }

  /// IS_IN?.
  bool contains(std::string_view Id) const {
    for (const std::string &Known : Ids)
      if (Known == Id)
        return true;
    return false;
  }

  size_t size() const { return Ids.size(); }

  friend bool operator==(const KnowsList &A, const KnowsList &B) {
    return A.Ids == B.Ids;
  }

private:
  std::vector<std::string> Ids;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_KNOWSLIST_H
