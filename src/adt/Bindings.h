//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of ModelBindings from the builtin paper specs to their
/// src/adt implementations.
///
/// This is the shared wiring behind the paper's section-5 discipline:
/// the spec_testing example, the Model tests, and the testgen campaign
/// driver all bind the same real C++ code to the same specs through this
/// table instead of hand-wiring lambdas three times. Each row can also
/// install a seeded defect (a mutant) so the mutation-catching half of
/// testgen has known bugs to find.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_BINDINGS_H
#define ALGSPEC_ADT_BINDINGS_H

#include "support/Error.h"

#include <span>
#include <string_view>

namespace algspec {

class ModelBinding;
class Spec;

namespace adt {

/// One seeded defect a binding can install instead of the correct
/// implementation. The axioms must catch every one of these.
struct MutantInfo {
  std::string_view Name;        ///< CLI key, e.g. "replace-pops".
  std::string_view Description; ///< What the defect does.
};

/// Maps one builtin spec to its src/adt implementation.
struct AdtBinding {
  std::string_view SpecName; ///< Spec name as parsed, e.g. "Queue".
  std::string_view Builtin;  ///< CLI builtin key, e.g. "queue".
  std::string_view Impl;     ///< Implementation, e.g. "adt::Queue".
  std::span<const MutantInfo> Mutants;
  /// Installs the implementation on \p B, resolving operation names
  /// against \p S first (several loaded specs may declare the same
  /// name). \p Mutant selects a seeded defect from Mutants (empty = the
  /// correct implementation). Fails with a structured diagnostic on an
  /// unknown mutant or an operation missing from the context.
  Result<void> (*Install)(ModelBinding &B, const Spec &S,
                          std::string_view Mutant);
};

/// The registry rows in a fixed order, so reports that iterate it are
/// deterministic.
std::span<const AdtBinding> adtBindings();

/// The row binding the spec named \p SpecName, or nullptr.
const AdtBinding *findAdtBinding(std::string_view SpecName);

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_BINDINGS_H
