//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FlatSymbolTable<V>: a single-hash-table representation with an undo
/// log (in the style LeBlanc and Cook later made standard): one global
/// table maps each identifier to a stack of (scope, value) bindings, and
/// each scope records which identifiers it declared so leaveBlock can
/// undo them.
///
/// O(1) retrieval regardless of nesting depth, at the cost of more work
/// on block exit — the third point in experiment E9's representation
/// comparison.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_ADT_FLATSYMBOLTABLE_H
#define ALGSPEC_ADT_FLATSYMBOLTABLE_H

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace algspec {
namespace adt {

/// Symbol table with one global hash table and per-scope undo logs.
template <typename V> class FlatSymbolTable {
public:
  FlatSymbolTable() { UndoLogs.emplace_back(); }

  void enterBlock() { UndoLogs.emplace_back(); }

  bool leaveBlock() {
    if (UndoLogs.size() <= 1)
      return false;
    for (const std::string &Id : UndoLogs.back()) {
      auto It = Table.find(Id);
      It->second.pop_back();
      if (It->second.empty())
        Table.erase(It);
    }
    UndoLogs.pop_back();
    return true;
  }

  void add(std::string_view Id, V Attributes) {
    std::string Key(Id);
    Table[Key].push_back(
        Binding{UndoLogs.size() - 1, std::move(Attributes)});
    UndoLogs.back().push_back(std::move(Key));
  }

  bool isInBlock(std::string_view Id) const {
    auto It = Table.find(std::string(Id));
    if (It == Table.end())
      return false;
    return It->second.back().Scope == UndoLogs.size() - 1;
  }

  std::optional<V> retrieve(std::string_view Id) const {
    auto It = Table.find(std::string(Id));
    if (It == Table.end())
      return std::nullopt;
    return It->second.back().Value;
  }

  size_t depth() const { return UndoLogs.size(); }

private:
  struct Binding {
    size_t Scope;
    V Value;
  };

  std::unordered_map<std::string, std::vector<Binding>> Table;
  std::vector<std::vector<std::string>> UndoLogs;
};

} // namespace adt
} // namespace algspec

#endif // ALGSPEC_ADT_FLATSYMBOLTABLE_H
