//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binding of specification operations to concrete C++ implementations.
///
/// This realizes the paper's section-5 testing discipline: a programmer
/// implements a module against the algebraic definition alone; the
/// binding evaluates ground terms of the algebra by running the real
/// code, so the ModelTester can check every axiom against the
/// implementation. It is also the other half of "implementations and
/// specifications are interchangeable": Session interprets the spec,
/// ModelBinding runs the code, both evaluate the same terms.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_MODEL_MODELBINDING_H
#define ALGSPEC_MODEL_MODELBINDING_H

#include "ast/Ids.h"
#include "model/Value.h"
#include "support/Error.h"

#include <functional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;

/// Evaluates ground terms by dispatching operations to bound callables.
///
/// Built-in behaviour (no binding required):
///  - Bool literals/true/false/not/and/or, Int literals and arithmetic;
///  - atom literals evaluate to std::string of their name (overridable
///    per sort with bindAtoms);
///  - SAME compares through the equality bound for the argument sort
///    (defaults exist for Bool/Int/atom sorts);
///  - if-then-else is lazy in its branches, strict in its condition;
///  - error propagates strictly through every bound operation.
class ModelBinding {
public:
  using OpFn = std::function<Value(std::span<const Value>)>;
  using AtomFn = std::function<Value(std::string_view)>;
  using EqFn = std::function<bool(const Value &, const Value &)>;

  explicit ModelBinding(AlgebraContext &Ctx);

  /// Binds an operation to a callable. Arguments arrive error-free (the
  /// binding short-circuits); return Value::error() to signal the
  /// algebra's error (e.g. FRONT of an empty queue).
  void bindOp(OpId Op, OpFn Fn);
  /// Convenience: binds by unique operation name. Fails with a
  /// structured "unbound operation" diagnostic when the name is unknown
  /// or ambiguous in the context, so callers (the testgen obstruction
  /// report, the binding registry) can surface it instead of crashing.
  Result<void> bindOp(std::string_view Name, OpFn Fn);
  /// Like bindOp(Name), but resolves \p Name among the operations \p S
  /// declares before consulting the whole context — several loaded specs
  /// may declare the same operation name (Queue and Symboltable both
  /// have ADD), and a binding registry installs per spec.
  Result<void> bindOp(const Spec &S, std::string_view Name, OpFn Fn);

  /// Overrides how atom literals of \p Sort become runtime values.
  void bindAtoms(SortId Sort, AtomFn Fn);

  /// Registers equality for values of \p Sort (needed for SAME on that
  /// sort and for comparing axiom sides of that sort).
  void bindEquals(SortId Sort, EqFn Fn);

  /// Evaluates a ground term. Fails (Result error) on unbound operations
  /// or non-ground terms; in-algebra errors come back as
  /// Value::error().
  Result<Value> evaluate(TermId Term);

  /// Compares two values of \p Sort; errors compare equal to errors
  /// only. Fails when no equality is bound for the sort.
  Result<bool> equal(SortId Sort, const Value &A, const Value &B);

  /// True when equal() can decide \p Sort: an explicit bindEquals, or a
  /// default (Bool, Int, and atom sorts in their default string
  /// representation). The testgen oracle layer keys on this to choose
  /// between direct comparison and observable-context oracles.
  bool hasEquality(SortId Sort) const;

  /// True when evaluate() could dispatch \p Op somewhere: an explicit
  /// binding, a builtin (arithmetic, SAME, ite, ...), or the boolean
  /// constants.
  bool isBoundOrBuiltin(OpId Op) const;

  /// The operations of \p S that evaluate() cannot dispatch, in
  /// declaration order — testgen reports these as named obstructions
  /// before running a campaign.
  std::vector<OpId> unboundOps(const Spec &S) const;

  AlgebraContext &context() { return Ctx; }

private:
  AlgebraContext &Ctx;
  std::unordered_map<OpId, OpFn> Ops;
  std::unordered_map<SortId, AtomFn> Atoms;
  std::unordered_map<SortId, EqFn> Equals;
};

} // namespace algspec

#endif // ALGSPEC_MODEL_MODELBINDING_H
