//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binding of specification operations to concrete C++ implementations.
///
/// This realizes the paper's section-5 testing discipline: a programmer
/// implements a module against the algebraic definition alone; the
/// binding evaluates ground terms of the algebra by running the real
/// code, so the ModelTester can check every axiom against the
/// implementation. It is also the other half of "implementations and
/// specifications are interchangeable": Session interprets the spec,
/// ModelBinding runs the code, both evaluate the same terms.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_MODEL_MODELBINDING_H
#define ALGSPEC_MODEL_MODELBINDING_H

#include "ast/Ids.h"
#include "model/Value.h"
#include "support/Error.h"

#include <functional>
#include <span>
#include <string_view>
#include <unordered_map>

namespace algspec {

class AlgebraContext;

/// Evaluates ground terms by dispatching operations to bound callables.
///
/// Built-in behaviour (no binding required):
///  - Bool literals/true/false/not/and/or, Int literals and arithmetic;
///  - atom literals evaluate to std::string of their name (overridable
///    per sort with bindAtoms);
///  - SAME compares through the equality bound for the argument sort
///    (defaults exist for Bool/Int/atom sorts);
///  - if-then-else is lazy in its branches, strict in its condition;
///  - error propagates strictly through every bound operation.
class ModelBinding {
public:
  using OpFn = std::function<Value(std::span<const Value>)>;
  using AtomFn = std::function<Value(std::string_view)>;
  using EqFn = std::function<bool(const Value &, const Value &)>;

  explicit ModelBinding(AlgebraContext &Ctx);

  /// Binds an operation to a callable. Arguments arrive error-free (the
  /// binding short-circuits); return Value::error() to signal the
  /// algebra's error (e.g. FRONT of an empty queue).
  void bindOp(OpId Op, OpFn Fn);
  /// Convenience: binds by unique operation name; asserts existence.
  void bindOp(std::string_view Name, OpFn Fn);

  /// Overrides how atom literals of \p Sort become runtime values.
  void bindAtoms(SortId Sort, AtomFn Fn);

  /// Registers equality for values of \p Sort (needed for SAME on that
  /// sort and for comparing axiom sides of that sort).
  void bindEquals(SortId Sort, EqFn Fn);

  /// Evaluates a ground term. Fails (Result error) on unbound operations
  /// or non-ground terms; in-algebra errors come back as
  /// Value::error().
  Result<Value> evaluate(TermId Term);

  /// Compares two values of \p Sort; errors compare equal to errors
  /// only. Fails when no equality is bound for the sort.
  Result<bool> equal(SortId Sort, const Value &A, const Value &B);

  AlgebraContext &context() { return Ctx; }

private:
  AlgebraContext &Ctx;
  std::unordered_map<OpId, OpFn> Ops;
  std::unordered_map<SortId, AtomFn> Atoms;
  std::unordered_map<SortId, EqFn> Equals;
};

} // namespace algspec

#endif // ALGSPEC_MODEL_MODELBINDING_H
