//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/ModelTester.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "model/ModelBinding.h"
#include "rewrite/Substitution.h"

#include <unordered_set>

using namespace algspec;

std::string ModelTestReport::render() const {
  std::string Out;
  for (const AxiomTestResult &R : Results) {
    Out += "axiom " + std::to_string(R.AxiomNumber) + ": ";
    if (R.Passed)
      Out += "passed (" + std::to_string(R.InstancesChecked) +
             " instances)\n";
    else
      Out += "FAILED\n  " + R.Failure + "\n";
  }
  for (const std::string &Caveat : Caveats)
    Out += "note: " + Caveat + "\n";
  return Out;
}

/// Collects the free variables of \p Term in first-occurrence order.
static void collectVars(const AlgebraContext &Ctx, TermId Term,
                        std::vector<VarId> &Vars,
                        std::unordered_set<VarId> &Seen) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (Seen.insert(Node.Var).second)
      Vars.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Vars, Seen);
}

ModelTestReport algspec::testModel(AlgebraContext &Ctx, const Spec &S,
                                   ModelBinding &Binding,
                                   const ModelTestOptions &Options) {
  ModelTestReport Report;
  TermEnumerator Enumerator(Ctx, Options.Enum);

  for (const Axiom &Ax : S.axioms()) {
    AxiomTestResult Result;
    Result.AxiomNumber = Ax.Number;
    SortId AxiomSort = Ctx.sortOf(Ax.Lhs);

    std::vector<VarId> Vars;
    std::unordered_set<VarId> Seen;
    collectVars(Ctx, Ax.Lhs, Vars, Seen);
    collectVars(Ctx, Ax.Rhs, Vars, Seen);

    std::vector<const std::vector<TermId> *> Choices;
    bool Empty = false;
    for (VarId Var : Vars) {
      const std::vector<TermId> &Set =
          Enumerator.enumerate(Ctx.var(Var).Sort, Options.MaxDepth);
      if (Enumerator.wasTruncated(Ctx.var(Var).Sort, Options.MaxDepth))
        Report.Caveats.push_back(
            "enumeration of sort '" +
            std::string(Ctx.sortName(Ctx.var(Var).Sort)) +
            "' was truncated");
      if (Set.empty())
        Empty = true;
      Choices.push_back(&Set);
    }
    if (Empty) {
      Report.Caveats.push_back("axiom " + std::to_string(Ax.Number) +
                               " quantifies over an uninhabited sort; "
                               "skipped");
      Report.Results.push_back(std::move(Result));
      continue;
    }

    std::vector<size_t> Index(Vars.size(), 0);
    bool FirstIteration = true;
    bool Done = false;
    while ((FirstIteration || !Done) &&
           Result.InstancesChecked < Options.MaxInstancesPerAxiom) {
      FirstIteration = false;

      Substitution Sigma;
      for (size_t I = 0; I != Vars.size(); ++I)
        Sigma.bind(Vars[I], (*Choices[I])[Index[I]]);
      TermId Lhs = applySubstitution(Ctx, Ax.Lhs, Sigma);
      TermId Rhs = applySubstitution(Ctx, Ax.Rhs, Sigma);

      auto LhsV = Binding.evaluate(Lhs);
      auto RhsV = Binding.evaluate(Rhs);
      ++Result.InstancesChecked;

      auto fail = [&](std::string Why) {
        Result.Passed = false;
        Result.Failure = printTerm(Ctx, Lhs) + " vs " + printTerm(Ctx, Rhs) +
                         ": " + std::move(Why);
      };

      if (!LhsV) {
        fail("evaluation failed: " + LhsV.error().message());
        break;
      }
      if (!RhsV) {
        fail("evaluation failed: " + RhsV.error().message());
        break;
      }
      auto Eq = Binding.equal(AxiomSort, *LhsV, *RhsV);
      if (!Eq) {
        fail("comparison failed: " + Eq.error().message());
        break;
      }
      if (!*Eq) {
        fail(LhsV->isError()   ? "lhs is error, rhs is not"
             : RhsV->isError() ? "rhs is error, lhs is not"
                               : "sides evaluate to different values");
        break;
      }

      if (Vars.empty())
        break;
      size_t Pos = 0;
      while (Pos != Index.size()) {
        if (++Index[Pos] < Choices[Pos]->size())
          break;
        Index[Pos] = 0;
        ++Pos;
      }
      Done = Pos == Index.size();
    }
    if (Result.InstancesChecked >= Options.MaxInstancesPerAxiom)
      Report.Caveats.push_back("axiom " + std::to_string(Ax.Number) +
                               ": instance cap reached");

    Report.AllPassed &= Result.Passed;
    Report.Results.push_back(std::move(Result));
  }
  return Report;
}
