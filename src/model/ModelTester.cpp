//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/ModelTester.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "model/ModelBinding.h"
#include "parser/Replicator.h"
#include "rewrite/Substitution.h"

#include <limits>
#include <unordered_set>

using namespace algspec;

std::string ModelTestReport::render() const {
  std::string Out;
  for (const AxiomTestResult &R : Results) {
    Out += "axiom " + std::to_string(R.AxiomNumber) + ": ";
    if (R.Passed)
      Out += "passed (" + std::to_string(R.InstancesChecked) +
             " instances)\n";
    else
      Out += "FAILED\n  " + R.Failure + "\n";
  }
  for (const std::string &Caveat : Caveats)
    Out += "note: " + Caveat + "\n";
  return Out;
}

/// Collects the free variables of \p Term in first-occurrence order.
static void collectVars(const AlgebraContext &Ctx, TermId Term,
                        std::vector<VarId> &Vars,
                        std::unordered_set<VarId> &Seen) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (Seen.insert(Node.Var).second)
      Vars.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Vars, Seen);
}

namespace {
/// Per-worker state for the parallel instance sweep: a replica of the
/// spec plus the user's implementation re-bound against it.
struct ModelWorker {
  std::unique_ptr<Replica> Rep;
  std::unique_ptr<ModelBinding> Binding; ///< Null when replication failed.
};
} // namespace

ModelTestReport algspec::testModel(AlgebraContext &Ctx, const Spec &S,
                                   ModelBinding &Binding,
                                   const ModelTestOptions &Options) {
  ModelTestReport Report;
  TermEnumerator Enumerator(Ctx, Options.Enum);

  std::unique_ptr<ParallelDriver<ModelWorker>> Driver;
  if (resolveJobs(Options.Par) > 1 && Options.BindingFactory &&
      Replica::create(Ctx, {&S})) {
    Driver = std::make_unique<ParallelDriver<ModelWorker>>(
        Options.Par, [&Ctx, &S, &Options] {
          auto W = std::make_unique<ModelWorker>();
          Result<std::unique_ptr<Replica>> Rep = Replica::create(Ctx, {&S});
          if (!Rep)
            return W;
          W->Rep = Rep.take();
          W->Binding = Options.BindingFactory(W->Rep->context());
          return W;
        });
  }

  for (const Axiom &Ax : S.axioms()) {
    AxiomTestResult Result;
    Result.AxiomNumber = Ax.Number;
    SortId AxiomSort = Ctx.sortOf(Ax.Lhs);

    std::vector<VarId> Vars;
    std::unordered_set<VarId> Seen;
    collectVars(Ctx, Ax.Lhs, Vars, Seen);
    collectVars(Ctx, Ax.Rhs, Vars, Seen);

    std::vector<const std::vector<TermId> *> Choices;
    bool Empty = false;
    for (VarId Var : Vars) {
      const std::vector<TermId> &Set =
          Enumerator.enumerate(Ctx.var(Var).Sort, Options.MaxDepth);
      if (Enumerator.wasTruncated(Ctx.var(Var).Sort, Options.MaxDepth))
        Report.Caveats.push_back(
            "enumeration of sort '" +
            std::string(Ctx.sortName(Ctx.var(Var).Sort)) +
            "' was truncated");
      if (Set.empty())
        Empty = true;
      Choices.push_back(&Set);
    }
    if (Empty) {
      Report.Caveats.push_back("axiom " + std::to_string(Ax.Number) +
                               " quantifies over an uninhabited sort; "
                               "skipped");
      Report.Results.push_back(std::move(Result));
      continue;
    }

    // The odometer space flattened: variable 0 is the least significant
    // digit. Only min(Total, cap) instances are ever visited.
    size_t Total = 1;
    for (const std::vector<TermId> *Set : Choices) {
      if (Total > std::numeric_limits<size_t>::max() / Set->size()) {
        Total = std::numeric_limits<size_t>::max();
        break;
      }
      Total *= Set->size();
    }
    size_t Capped = std::min(Total, Options.MaxInstancesPerAxiom);

    // Evaluates instance \p Flat on the caller's binding; on mismatch
    // fills Result.Failure and returns true.
    auto evalOnMain = [&](size_t Flat) -> bool {
      Substitution Sigma;
      size_t Rem = Flat;
      for (size_t I = 0; I != Vars.size(); ++I) {
        Sigma.bind(Vars[I], (*Choices[I])[Rem % Choices[I]->size()]);
        Rem /= Choices[I]->size();
      }
      TermId Lhs = applySubstitution(Ctx, Ax.Lhs, Sigma);
      TermId Rhs = applySubstitution(Ctx, Ax.Rhs, Sigma);

      auto LhsV = Binding.evaluate(Lhs);
      auto RhsV = Binding.evaluate(Rhs);

      auto fail = [&](std::string Why) {
        Result.Passed = false;
        Result.Failure = printTerm(Ctx, Lhs) + " vs " + printTerm(Ctx, Rhs) +
                         ": " + std::move(Why);
      };

      if (!LhsV) {
        fail("evaluation failed: " + LhsV.error().message());
        return true;
      }
      if (!RhsV) {
        fail("evaluation failed: " + RhsV.error().message());
        return true;
      }
      auto Eq = Binding.equal(AxiomSort, *LhsV, *RhsV);
      if (!Eq) {
        fail("comparison failed: " + Eq.error().message());
        return true;
      }
      if (!*Eq) {
        fail(LhsV->isError()   ? "lhs is error, rhs is not"
             : RhsV->isError() ? "rhs is error, lhs is not"
                               : "sides evaluate to different values");
        return true;
      }
      return false;
    };

    if (Driver && Capped <= Options.Par.MaxFlatSpace) {
      // Workers classify their shard; the merge walks flagged indices in
      // ascending order and re-evaluates them on the caller's binding,
      // which regenerates the exact serial failure message and stop
      // point. With a deterministic binding the first flagged index is
      // the serial failure; re-checking instead of trusting the flag
      // also tolerates a worker whose replication failed (it flags its
      // whole shard and the merge sorts it out here).
      std::vector<uint8_t> Flagged = Driver->map<uint8_t>(
          Capped, [&](ModelWorker &W, size_t Flat) -> uint8_t {
            if (!W.Binding)
              return 1;
            AlgebraContext &RCtx = W.Rep->context();
            Substitution Sigma;
            size_t Rem = Flat;
            for (size_t I = 0; I != Vars.size(); ++I) {
              TermId Value = W.Rep->mapTerm(
                  (*Choices[I])[Rem % Choices[I]->size()]);
              if (!Value.isValid())
                return 1;
              Sigma.bind(W.Rep->mapVar(Vars[I]), Value);
              Rem /= Choices[I]->size();
            }
            TermId MappedLhs = W.Rep->mapTerm(Ax.Lhs);
            TermId MappedRhs = W.Rep->mapTerm(Ax.Rhs);
            if (!MappedLhs.isValid() || !MappedRhs.isValid())
              return 1;
            TermId Lhs = applySubstitution(RCtx, MappedLhs, Sigma);
            TermId Rhs = applySubstitution(RCtx, MappedRhs, Sigma);
            auto LhsV = W.Binding->evaluate(Lhs);
            if (!LhsV)
              return 1;
            auto RhsV = W.Binding->evaluate(Rhs);
            if (!RhsV)
              return 1;
            auto Eq = W.Binding->equal(W.Rep->mapSort(AxiomSort), *LhsV,
                                       *RhsV);
            return (!Eq || !*Eq) ? 1 : 0;
          });
      Result.InstancesChecked = Capped;
      for (size_t Flat = 0; Flat != Capped; ++Flat) {
        if (!Flagged[Flat])
          continue;
        if (evalOnMain(Flat)) {
          Result.InstancesChecked = Flat + 1;
          break;
        }
      }
    } else {
      while (Result.InstancesChecked < Capped) {
        size_t Flat = Result.InstancesChecked++;
        if (evalOnMain(Flat))
          break;
      }
    }
    if (Result.InstancesChecked >= Options.MaxInstancesPerAxiom)
      Report.Caveats.push_back("axiom " + std::to_string(Ax.Number) +
                               ": instance cap reached");

    Report.AllPassed &= Result.Passed;
    Report.Results.push_back(std::move(Result));
  }
  return Report;
}
