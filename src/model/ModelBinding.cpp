//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/ModelBinding.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"

#include <string>
#include <vector>

using namespace algspec;

ModelBinding::ModelBinding(AlgebraContext &Ctx) : Ctx(Ctx) {}

void ModelBinding::bindOp(OpId Op, OpFn Fn) {
  Ops[Op] = std::move(Fn);
}

Result<void> ModelBinding::bindOp(std::string_view Name, OpFn Fn) {
  OpId Op = Ctx.lookupOp(Name);
  if (!Op.isValid())
    return makeError("unbound operation '" + std::string(Name) +
                     "': no unique operation of this name in the "
                     "loaded specs");
  bindOp(Op, std::move(Fn));
  return {};
}

Result<void> ModelBinding::bindOp(const Spec &S, std::string_view Name,
                                  OpFn Fn) {
  OpId Found;
  for (OpId Op : S.operations()) {
    if (Ctx.opName(Op) != Name)
      continue;
    if (Found.isValid())
      return makeError("unbound operation '" + std::string(Name) +
                       "': ambiguous within spec '" + S.name() + "'");
    Found = Op;
  }
  if (Found.isValid()) {
    bindOp(Found, std::move(Fn));
    return {};
  }
  // Operations the spec uses but does not declare (a Stack binding also
  // installs the Array operations) resolve against the whole context.
  return bindOp(Name, std::move(Fn));
}

void ModelBinding::bindAtoms(SortId Sort, AtomFn Fn) {
  Atoms[Sort] = std::move(Fn);
}

void ModelBinding::bindEquals(SortId Sort, EqFn Fn) {
  Equals[Sort] = std::move(Fn);
}

bool ModelBinding::hasEquality(SortId Sort) const {
  if (Equals.count(Sort))
    return true;
  switch (Ctx.sort(Sort).Kind) {
  case SortKind::Bool:
  case SortKind::Int:
    return true;
  case SortKind::Atom:
    // The default atom equality compares the default string
    // representation; a bindAtoms override invalidates it.
    return !Atoms.count(Sort);
  case SortKind::User:
    return false;
  }
  return false;
}

bool ModelBinding::isBoundOrBuiltin(OpId Op) const {
  if (Ops.count(Op))
    return true;
  if (Ctx.op(Op).Builtin != BuiltinOp::None)
    return true;
  return Op == Ctx.trueOp() || Op == Ctx.falseOp();
}

std::vector<OpId> ModelBinding::unboundOps(const Spec &S) const {
  std::vector<OpId> Unbound;
  for (OpId Op : S.operations())
    if (!isBoundOrBuiltin(Op))
      Unbound.push_back(Op);
  return Unbound;
}

Result<bool> ModelBinding::equal(SortId Sort, const Value &A,
                                 const Value &B) {
  if (A.isError() || B.isError())
    return A.isError() == B.isError();

  if (auto It = Equals.find(Sort); It != Equals.end())
    return It->second(A, B);

  const SortInfo &Info = Ctx.sort(Sort);
  switch (Info.Kind) {
  case SortKind::Bool:
    return A.get<bool>() == B.get<bool>();
  case SortKind::Int:
    return A.get<int64_t>() == B.get<int64_t>();
  case SortKind::Atom:
    // Default atom representation is the atom's name.
    if (A.holds<std::string>() && B.holds<std::string>())
      return A.get<std::string>() == B.get<std::string>();
    return makeError("atoms of sort '" + std::string(Ctx.sortName(Sort)) +
                     "' use a custom representation; bind an equality");
  case SortKind::User:
    return makeError("no equality bound for sort '" +
                     std::string(Ctx.sortName(Sort)) + "'");
  }
  return makeError("unreachable sort kind");
}

Result<Value> ModelBinding::evaluate(TermId Term) {
  const TermNode Node = Ctx.node(Term);
  switch (Node.Kind) {
  case TermKind::Error:
    return Value::error();
  case TermKind::Int:
    return Value::of<int64_t>(Ctx.intValue(Term));
  case TermKind::Atom: {
    if (auto It = Atoms.find(Node.Sort); It != Atoms.end())
      return It->second(Ctx.str(Node.AtomName));
    return Value::of(std::string(Ctx.str(Node.AtomName)));
  }
  case TermKind::Var:
    return makeError("cannot evaluate open term " + printTerm(Ctx, Term));
  case TermKind::Op:
    break;
  }

  const OpInfo &Info = Ctx.op(Node.Op);

  // Lazy if-then-else.
  if (Info.Builtin == BuiltinOp::Ite) {
    auto Children = Ctx.children(Term);
    TermId CondT = Children[0], ThenT = Children[1], ElseT = Children[2];
    Result<Value> Cond = evaluate(CondT);
    if (!Cond)
      return Cond;
    if (Cond->isError())
      return Value::error();
    return evaluate(Cond->get<bool>() ? ThenT : ElseT);
  }

  // Strict evaluation of the arguments.
  auto Span = Ctx.children(Term);
  std::vector<TermId> ChildTerms(Span.begin(), Span.end());
  std::vector<Value> Args;
  Args.reserve(ChildTerms.size());
  bool AnyError = false;
  for (TermId Child : ChildTerms) {
    Result<Value> Arg = evaluate(Child);
    if (!Arg)
      return Arg;
    AnyError |= Arg->isError();
    Args.push_back(std::move(*Arg));
  }
  if (AnyError)
    return Value::error();

  // Explicit bindings win over builtin defaults (true/false are ops).
  if (auto It = Ops.find(Node.Op); It != Ops.end())
    return It->second(Args);

  switch (Info.Builtin) {
  case BuiltinOp::Same: {
    Result<bool> Eq = equal(Info.ArgSorts[0], Args[0], Args[1]);
    if (!Eq)
      return Eq.error();
    return Value::of(*Eq);
  }
  case BuiltinOp::IntAdd:
    return Value::of<int64_t>(Args[0].get<int64_t>() +
                              Args[1].get<int64_t>());
  case BuiltinOp::IntSub:
    return Value::of<int64_t>(Args[0].get<int64_t>() -
                              Args[1].get<int64_t>());
  case BuiltinOp::IntLe:
    return Value::of(Args[0].get<int64_t>() <= Args[1].get<int64_t>());
  case BuiltinOp::IntLt:
    return Value::of(Args[0].get<int64_t>() < Args[1].get<int64_t>());
  case BuiltinOp::IntEq:
    return Value::of(Args[0].get<int64_t>() == Args[1].get<int64_t>());
  case BuiltinOp::BoolNot:
    return Value::of(!Args[0].get<bool>());
  case BuiltinOp::BoolAnd:
    return Value::of(Args[0].get<bool>() && Args[1].get<bool>());
  case BuiltinOp::BoolOr:
    return Value::of(Args[0].get<bool>() || Args[1].get<bool>());
  case BuiltinOp::Ite:
  case BuiltinOp::None:
    break;
  }

  if (Node.Op == Ctx.trueOp())
    return Value::of(true);
  if (Node.Op == Ctx.falseOp())
    return Value::of(false);

  return makeError("no binding for operation '" +
                   std::string(Ctx.opName(Node.Op)) + "'");
}
