//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type-erased runtime values for model-based testing.
///
/// A Value carries either one C++ object of arbitrary type or the
/// distinguished error (matching the algebra's \c error). Concrete
/// operations signal failure by returning Value::error(), which then
/// propagates strictly, exactly like the specification's error.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_MODEL_VALUE_H
#define ALGSPEC_MODEL_VALUE_H

#include <any>
#include <cassert>
#include <utility>

namespace algspec {

/// One runtime value or the error mark.
class Value {
public:
  /// Default-constructed values are the error value.
  Value() = default;

  /// Wraps a concrete object.
  template <typename T> static Value of(T Object) {
    Value V;
    V.Storage = std::move(Object);
    return V;
  }

  static Value error() { return Value(); }

  bool isError() const { return !Storage.has_value(); }

  /// Typed access; asserts on type mismatch or error.
  template <typename T> const T &get() const {
    assert(!isError() && "accessing the error value");
    const T *Ptr = std::any_cast<T>(&Storage);
    assert(Ptr && "Value type mismatch");
    return *Ptr;
  }

  /// True when the value holds an object of type T.
  template <typename T> bool holds() const {
    return std::any_cast<T>(&Storage) != nullptr;
  }

private:
  std::any Storage;
};

} // namespace algspec

#endif // ALGSPEC_MODEL_VALUE_H
