//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Axiom-by-axiom testing of a concrete implementation against its
/// algebraic specification (paper, section 5).
///
/// For every axiom l = r, the tester instantiates the free variables with
/// enumerated ground constructor terms, evaluates both sides through the
/// ModelBinding (i.e. by running the real C++ code), and compares the
/// results with the equality bound for the axiom's sort. Any mismatch is
/// a bug in the implementation — or evidence the implementor relied on
/// information the specification does not promise.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_MODEL_MODELTESTER_H
#define ALGSPEC_MODEL_MODELTESTER_H

#include "ast/Ids.h"
#include "check/TermEnumerator.h"
#include "support/Parallel.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;
class ModelBinding;
class Spec;

/// Tunables for a model test run.
struct ModelTestOptions {
  /// Depth bound for enumerated variable instantiations.
  unsigned MaxDepth = 4;
  /// Cap on assignments per axiom (exhaustive below the cap).
  size_t MaxInstancesPerAxiom = 50000;
  EnumeratorOptions Enum;
  /// Degree of parallelism for the instance sweep. Takes effect only
  /// when BindingFactory is set; the report stays byte-identical to the
  /// serial run at any job count.
  ParallelOptions Par;
  /// Builds a fresh binding over a worker's replica context. A
  /// ModelBinding wraps arbitrary user callables, so it cannot be
  /// copied automatically the way specs can; the factory re-binds the
  /// implementation against the context it is given (by operation
  /// name).
  ///
  /// Concurrency contract: the factory is invoked lazily from pool
  /// worker threads, so it must be safe to call concurrently, and the
  /// bindings it returns are evaluated concurrently over disjoint
  /// instance shards. Note the parallel sweep also evaluates instances
  /// in a different pattern than the serial one: workers evaluate every
  /// instance of their shard on replica bindings, and the caller's
  /// \c Binding then re-evaluates only the flagged (failing) instances
  /// during the merge — whereas the serial sweep evaluates every
  /// instance up to the first failure on the caller's binding. The
  /// byte-identical-report guarantee therefore only holds for
  /// deterministic, effectively stateless bindings whose results do not
  /// depend on evaluation order or on which binding instance runs them.
  std::function<std::unique_ptr<ModelBinding>(AlgebraContext &)>
      BindingFactory;
};

/// Outcome for one axiom.
struct AxiomTestResult {
  unsigned AxiomNumber = 0;
  bool Passed = true;
  uint64_t InstancesChecked = 0;
  /// First failing assignment and results, rendered.
  std::string Failure;
};

/// Outcome of a whole run.
struct ModelTestReport {
  bool AllPassed = true;
  std::vector<AxiomTestResult> Results;
  std::vector<std::string> Caveats;

  std::string render() const;
};

/// Tests \p Binding against every axiom of \p S.
ModelTestReport testModel(AlgebraContext &Ctx, const Spec &S,
                          ModelBinding &Binding,
                          const ModelTestOptions &Options = ModelTestOptions());

} // namespace algspec

#endif // ALGSPEC_MODEL_MODELTESTER_H
