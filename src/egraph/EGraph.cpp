//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "egraph/EGraph.h"

#include "ast/AlgebraContext.h"
#include "rewrite/Engine.h"

#include <algorithm>
#include <cassert>

using namespace algspec;

bool EGraph::isAtomicValue(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  switch (Node.Kind) {
  case TermKind::Atom:
  case TermKind::Int:
  case TermKind::Error:
    return true;
  case TermKind::Op:
    return Term == Ctx.trueTerm() || Term == Ctx.falseTerm();
  case TermKind::Var:
    return false;
  }
  return false;
}

unsigned EGraph::repRank(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  if (isAtomicValue(Term))
    return 0;
  if (Node.Kind == TermKind::Var)
    return 5;
  // Constructor-headedness dominates groundness: parents canonicalized
  // over a constructor-headed representative expose the constructor
  // patterns the rule matcher keys on (POP(PUSH(s, a)) fires, POP of a
  // defined-op synonym never would), so saturation makes progress even
  // when the defined form is the older node.
  bool Ctor = Node.Kind == TermKind::Op && Ctx.op(Node.Op).isConstructor();
  uint32_t Idx = nodeOf(Term);
  bool Ground = Idx != UINT32_MAX && GroundOf[Idx];
  if (Ctor)
    return Ground ? 1 : 2;
  return Ground ? 3 : 4;
}

uint32_t EGraph::add(TermId Term) {
  if (uint32_t Idx = nodeOf(Term); Idx != UINT32_MAX)
    return Idx;

  // Children first (they exist before the parent in any walk), so the
  // parent registration below can link into their classes.
  const TermNode Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Op) {
    auto Span = Ctx.children(Term);
    std::vector<TermId> Children(Span.begin(), Span.end());
    for (TermId Child : Children)
      add(Child);
  }

  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(Term);
  NodeIndex.emplace(Term, Idx);
  UF.push_back(Idx);
  RepOf.push_back(Term);
  ValueOf.push_back(isAtomicValue(Term) ? Term : TermId());
  ParentsOf.emplace_back();
  bool Ground = Node.Kind != TermKind::Var;
  if (Node.Kind == TermKind::Op)
    for (TermId Child : Ctx.children(Term))
      Ground = Ground && GroundOf[nodeOf(Child)];
  GroundOf.push_back(Ground ? 1 : 0);

  if (Node.Kind == TermKind::Op)
    for (TermId Child : Ctx.children(Term))
      ParentsOf[findNode(nodeOf(Child))].push_back(Idx);

  Pending.push_back(Idx);
  return Idx;
}

uint32_t EGraph::findNode(uint32_t Idx) {
  assert(Idx != UINT32_MAX && "term not registered in the e-graph");
  while (UF[Idx] != Idx) {
    UF[Idx] = UF[UF[Idx]]; // path halving
    Idx = UF[Idx];
  }
  return Idx;
}

bool EGraph::merge(TermId A, TermId B) {
  return mergeNodes(nodeOf(A), nodeOf(B));
}

bool EGraph::mergeNodes(uint32_t A, uint32_t B) {
  uint32_t Ra = findNode(A);
  uint32_t Rb = findNode(B);
  if (Ra == Rb)
    return false;
  // Canonical root: the smallest member index. Deterministic regardless
  // of merge order, which keeps every downstream report byte-stable.
  uint32_t Root = std::min(Ra, Rb);
  uint32_t Old = std::max(Ra, Rb);
  UF[Old] = Root;
  ++Merges;
  ++MergedAway;

  if (ParentsOf[Root].empty())
    ParentsOf[Root] = std::move(ParentsOf[Old]);
  else
    ParentsOf[Root].insert(ParentsOf[Root].end(), ParentsOf[Old].begin(),
                           ParentsOf[Old].end());
  ParentsOf[Old].clear();

  TermId RepA = RepOf[Ra], RepB = RepOf[Rb];
  unsigned RankA = repRank(RepA), RankB = repRank(RepB);
  RepOf[Root] = RankA < RankB ? RepA
                : RankB < RankA
                    ? RepB
                    : (nodeOf(RepA) <= nodeOf(RepB) ? RepA : RepB);

  TermId Va = ValueOf[Ra], Vb = ValueOf[Rb];
  if (Va.isValid() && Vb.isValid() && Va != Vb)
    Contradiction = true;
  ValueOf[Root] = Va.isValid() ? Va : Vb;

  // Every node holding a member of the united class as a child may now
  // be congruent to a node in another class; recanonicalize them. The
  // members of the class itself keep their structure, so they need no
  // revisit — except that the class representative may have changed,
  // which only the parents observe.
  for (uint32_t P : ParentsOf[Root])
    Pending.push_back(P);
  return true;
}

void EGraph::canonicalize(uint32_t Idx) {
  TermId Term = Nodes[Idx];
  const TermNode Node = Ctx.node(Term);
  if (Node.Kind != TermKind::Op)
    return;
  const OpInfo &Info = Ctx.op(Node.Op);

  // Copy the children out: term creation below can reallocate the
  // arena's child pool under a live span.
  auto Span = Ctx.children(Term);
  std::vector<TermId> Orig(Span.begin(), Span.end());
  std::vector<TermId> Reps = Orig;
  for (TermId &Child : Reps)
    Child = RepOf[findNode(nodeOf(Child))];

  // If-then-else folds natively once its condition class is decided;
  // the branches stay lazy exactly as in the engine.
  if (Info.Builtin == BuiltinOp::Ite) {
    TermId Cond = Reps[0];
    if (Cond == Ctx.trueTerm()) {
      mergeNodes(Idx, nodeOf(Orig[1]));
      return;
    }
    if (Cond == Ctx.falseTerm()) {
      mergeNodes(Idx, nodeOf(Orig[2]));
      return;
    }
    if (Ctx.isError(Cond)) {
      uint32_t E = add(Ctx.makeError(Node.Sort));
      mergeNodes(Idx, E);
      return;
    }
  }

  // SAME over one class is true whether or not the terms are ground:
  // both sides denote the same value under every assignment consistent
  // with this graph's merges.
  if (Info.Builtin == BuiltinOp::Same &&
      findNode(nodeOf(Orig[0])) == findNode(nodeOf(Orig[1]))) {
    uint32_t T = add(Ctx.trueTerm());
    mergeNodes(Idx, T);
    return;
  }

  // Remaining builtins evaluate through the engine's native evaluator
  // over the class representatives.
  if (Eval && Info.isBuiltin() && Info.Builtin != BuiltinOp::Ite) {
    TermId Value = Eval->evalBuiltinApp(Node.Op, Reps);
    if (Value.isValid()) {
      uint32_t V = add(Value);
      mergeNodes(Idx, V);
      return;
    }
  }

  // Structural canonicalization: the same node over the representative
  // children. Hash-consing makes congruent nodes collide into one
  // TermId, so `add` returning an existing index *is* the congruence
  // detection. makeOp's strict error propagation applies here too: a
  // child class that resolved to error poisons the canonical form.
  bool Changed = false;
  for (size_t I = 0; I != Reps.size(); ++I)
    Changed |= Reps[I] != Orig[I];
  if (!Changed)
    return;
  TermId Canon = Info.Builtin == BuiltinOp::Ite
                     ? Ctx.makeIte(Reps[0], Reps[1], Reps[2])
                     : Ctx.makeOp(Node.Op, Reps);
  uint32_t C = add(Canon);
  mergeNodes(Idx, C);
}

unsigned EGraph::rebuild() {
  unsigned Rounds = 0;
  std::vector<uint32_t> Batch;
  while (!Pending.empty()) {
    ++Rounds;
    Batch.clear();
    std::swap(Batch, Pending);
    std::sort(Batch.begin(), Batch.end());
    Batch.erase(std::unique(Batch.begin(), Batch.end()), Batch.end());
    for (uint32_t Idx : Batch)
      canonicalize(Idx);
  }
  RebuildRounds += Rounds;
  return Rounds;
}
