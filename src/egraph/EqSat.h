//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equality saturation over the e-graph, and the obligation prover the
/// verifier and consistency checker use as a batch oracle.
///
/// Saturation runs the workspace's oriented rules as *bidirectional*
/// rewrites: every registered e-node is matched against each rule's
/// left-hand side (forward) and right-hand side (backward, when the
/// reverse is instantiable), and each match merges the node with the
/// instantiated other side. Matching is the engine's own first-order
/// matcher over class-canonicalized nodes — congruence rebuilds surface
/// class equalities as fresh hash-consed nodes, which the structural
/// matcher then sees — so the e-graph reuses the rewrite layer's
/// pattern machinery instead of a private e-matching engine. Saturation
/// is fuel-bounded (node budget and round budget) and reports an honest
/// verdict: `Saturated` when a fixpoint was reached, `FuelExhausted`
/// when the budget ran out first. This is what makes rule sets that
/// diverge under directed normalization (the paper's RETRIEVE_R
/// unfolding through POP forever) usable: the goal equality is read off
/// the moment the classes meet, whether or not the rules would ever
/// quiesce.
///
/// The prover discharges one obligation `Lhs = Rhs` (open terms) by
/// loading both sides into a shared base e-graph, saturating, and — when
/// the classes stay apart — case-splitting in child graphs:
///
///  - **guard splits** (the PR-3/PR-6 refutation discipline): the first
///    undecided if-then-else condition is assumed true / false / error
///    in three child graphs; a SAME guard's true case also merges its
///    arguments, and a branch whose assumptions collapse into a
///    contradiction (true = false, two distinct literals, a value =
///    error) is vacuously discharged — that branch covers no ground
///    instance;
///  - **generator splits**: when the undecided condition mentions a
///    representation-sorted variable, the variable is split by the
///    representation's generator images (x = INIT_R | ENTERBLOCK_R(x') |
///    ADD_R(x', i, a) | ...), a complete case analysis of the Reachable
///    value domain by each value's last generator application. This is
///    what guard splits alone cannot do: an infeasible branch like
///    IS_NEWSTACK?(x) = true for a reachable x is only refutable once x
///    takes a generator shape.
///
/// Soundness: merges happen only through (a) instances of the
/// workspace's own axioms, (b) the builtin semantics shared with the
/// engine, and (c) congruence — so two merged terms are equal in the
/// equational theory. Translating a proved theory equality into the
/// checkers' normal-form equality additionally needs confluence
/// evidence; callers gate the oracle on the convergence certifier's
/// critical-pair analysis (every pair joined, all rules left-linear,
/// orientation complete — see ConvergenceReport::localJoinability and
/// docs/VERIFICATION.md). A prover failure proves nothing and callers
/// fall back to their ground sweeps unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_EGRAPH_EQSAT_H
#define ALGSPEC_EGRAPH_EQSAT_H

#include "ast/Ids.h"
#include "egraph/EGraph.h"

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace algspec {

class AlgebraContext;
class RewriteEngine;
class RewriteSystem;

/// How the checkers use the equality-saturation oracle. Decoded from
/// `--egraph=on|off|auto` (CLI) and the protocol's "egraph" option.
enum class EqSatMode : uint8_t {
  Off,  ///< Never consult the e-graph.
  Auto, ///< Consult it when the convergence gate licenses its verdicts.
  On,   ///< Like Auto, but run the saturation pass for its counters even
        ///< when the gate fails (verdicts still require the gate).
};

/// Outcome of one saturation run.
enum class SatVerdict : uint8_t {
  Saturated,     ///< Fixpoint: no rule application changes the graph.
  FuelExhausted, ///< Node or round budget ran out first.
};

/// Saturation and proof-search budgets. All limits are deterministic
/// cutoffs; exceeding one only loses completeness, never soundness.
struct EqSatOptions {
  /// Node budget for the shared base graph (all obligations of a run).
  uint64_t MaxBaseNodes = 40000;
  /// Node budget per split-branch graph.
  uint64_t MaxBranchNodes = 6000;
  /// Saturation rounds per graph.
  unsigned MaxRounds = 24;
  /// Nested case splits (guard or generator) per obligation.
  unsigned MaxSplitDepth = 6;
  /// Total branch graphs per obligation (the split tree's size cap).
  unsigned MaxBranches = 200;
  /// Rule instantiations deeper than the deepest initial term plus this
  /// slack are skipped (and the run reports FuelExhausted if the goal
  /// stays open). This is what contains recursively unfolding rules —
  /// RETRIEVE_R(s, i) keeps manufacturing RETRIEVE_R(POP(s), i) inside
  /// an undecided branch — to linear growth instead of the node budget.
  unsigned DepthSlack = 12;
};

/// Cumulative prover counters (all graphs: base and branches).
struct EqSatProverStats {
  EGraphStats Graph;
  uint64_t Proofs = 0;        ///< Obligations discharged.
  uint64_t Failures = 0;      ///< Obligations the prover gave up on.
  uint64_t GuardSplits = 0;   ///< Guard case splits performed.
  uint64_t GenSplits = 0;     ///< Generator case splits performed.
  uint64_t FuelExhausted = 0; ///< Saturation runs that ran out of fuel.
  uint64_t Invariants = 0;    ///< Reachability invariants derived.
};

/// Discharges equational obligations by saturation + case splits.
/// Deterministic and single-threaded; \p Eval is used only for builtin
/// evaluation (never normalization), so its counters are untouched.
class EqSatProver {
public:
  EqSatProver(AlgebraContext &Ctx, const RewriteSystem &System,
              RewriteEngine &Eval, EqSatOptions Options = EqSatOptions());

  /// Enables generator splits and reachability invariants: variables of
  /// \p RepSort case-split over \p Generators images, and every unary op
  /// over \p RepSort that provably evaluates to one fixed value on all
  /// generator images (checked by structural induction over the
  /// generators) is assumed at that value on every \p RepSort variable.
  /// Only sound when \p Generators generate the caller's whole value
  /// domain (the verifier passes the mapped images of *all* abstract
  /// constructors, or nothing). The derived invariant — typically
  /// IS_NEWSTACK?(v) = false, the paper's Assumption 1 — is what keeps
  /// open obligations from regressing into unbounded generator splits.
  void enableInduction(SortId RepSort, std::vector<OpId> Generators);

  /// Attempts to prove Lhs = Rhs for every assignment. True means the
  /// equality holds in the equational theory; false means nothing.
  bool prove(TermId Lhs, TermId Rhs);

  /// Batch form over the shared base graph: saturates once with every
  /// pair loaded, then reads each pair off (no case splits). Returns
  /// one flag per pair. This is the consistency oracle's screen.
  std::vector<uint8_t> proveBatch(
      const std::vector<std::pair<TermId, TermId>> &Pairs);

  /// Cumulative counters; the graph block sums the base graph and every
  /// branch graph ever built.
  EqSatProverStats stats() const;
  SatVerdict lastVerdict() const { return Verdict; }

private:
  struct Binding {
    TermId A, B; ///< Assumption: A and B are one class.
  };

  /// One saturation run over \p G up to the budgets. \p Applied is the
  /// graph's (rule, direction, node) memo. When \p GoalA / \p GoalB are
  /// valid the run stops early once they share a class (or the graph
  /// contradicts itself) — the answer can't change after that.
  SatVerdict saturate(EGraph &G, std::unordered_set<uint64_t> &Applied,
                      uint64_t MaxNodes, TermId GoalA = TermId(),
                      TermId GoalB = TermId());
  /// Applies every rule bidirectionally to every node once; returns
  /// true when any merge happened.
  bool applyRules(EGraph &G, std::unordered_set<uint64_t> &Applied,
                  uint64_t MaxNodes, bool &OutOfFuel, bool &Skipped);
  /// Derives the reachability invariants for enableInduction.
  void deriveInvariants();
  /// Height of \p Term (memoized; terms are immutable and hash-consed).
  unsigned termDepth(TermId Term);
  /// Adds the derived invariant assumptions for every \p InductionSort
  /// variable below the given terms to \p G.
  void assertInvariants(EGraph &G, TermId Lhs, TermId Rhs,
                        const std::vector<Binding> &Assumes);
  /// Recursive split search.
  bool proveRec(TermId Lhs, TermId Rhs, std::vector<Binding> Assumes,
                unsigned Depth, unsigned &Branches);
  /// First undecided if-then-else condition reachable from the goal
  /// classes, in node order; returns its class representative (invalid
  /// when none).
  TermId findUndecidedGuard(EGraph &G, TermId Lhs, TermId Rhs);
  /// First induction-sorted variable inside \p Term, pre-order.
  VarId findInductionVar(TermId Term) const;

  AlgebraContext &Ctx;
  const RewriteSystem &System;
  RewriteEngine &Eval;
  EqSatOptions Options;

  /// Shared base graph: obligations accumulate here so the saturated
  /// congruence is answered once per workspace, not once per query.
  EGraph Base;
  std::unordered_set<uint64_t> BaseApplied;
  /// Rules whose reverse is instantiable (same variable set both sides).
  std::vector<uint8_t> BackOk;

  SortId InductionSort;
  std::vector<OpId> Generators;
  /// Derived invariants: op (unary over InductionSort) |-> the atomic
  /// value it takes on every generator image.
  std::vector<std::pair<OpId, TermId>> Invariants;
  unsigned FreshCounter = 0;

  /// Instantiation depth cap for the current saturation (deepest initial
  /// term plus DepthSlack); set before each saturate call.
  unsigned DepthCap = ~0u;
  std::unordered_map<TermId, unsigned> DepthMemo;

  EqSatProverStats Stats;
  /// Totals over completed branch graphs (the base graph is summed live).
  EGraphStats BranchTotals;
  SatVerdict Verdict = SatVerdict::Saturated;
};

} // namespace algspec

#endif // ALGSPEC_EGRAPH_EQSAT_H
