//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An e-graph over the hash-consed term arena.
///
/// The arena already stores every term exactly once (PR 7's packed,
/// hash-consed nodes), so an e-node here *is* a TermId: the e-graph adds
/// only a union-find partitioning registered terms into e-classes and a
/// congruence-closure `rebuild`. Congruence detection rides on the hash
/// cons itself: rebuilding a node means re-creating it from its
/// children's class representatives with AlgebraContext::makeOp, and two
/// congruent nodes collide into the *same* TermId, which `add` then
/// observes as an existing e-node and merges. This keeps the e-graph at
/// two side arrays over the arena instead of a private node table, and
/// it inherits makeOp's semantics for free: strict error propagation
/// (a child class whose representative is `error` poisons the rebuilt
/// parent) and lazy if-then-else branches.
///
/// Builtin semantics beyond structure are applied during
/// canonicalization: an if-then-else whose condition class resolves to
/// true/false/error collapses into the taken branch (or error), SAME
/// over one class is true, and the remaining builtins (SAME on
/// literals, Int arithmetic, Bool connectives) evaluate through the
/// rewrite engine's native evaluator so the e-graph and the engine can
/// never disagree about a builtin.
///
/// Everything is deterministic: e-nodes are processed in insertion
/// order, the union-find root is the smallest member index, and class
/// representatives are chosen by a fixed rank (value < ground
/// constructor term < open constructor term < ground op < other op <
/// variable, ties to the oldest node).
/// Reports derived from the e-graph are byte-identical across runs and
/// job counts.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_EGRAPH_EGRAPH_H
#define ALGSPEC_EGRAPH_EGRAPH_H

#include "ast/Ids.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;
class RewriteEngine;

/// Counters for one e-graph (or summed over many); surfaced through
/// EngineStats and the server's stats block.
struct EGraphStats {
  uint64_t Classes = 0;       ///< Live e-classes.
  uint64_t Nodes = 0;         ///< Registered e-nodes (terms).
  uint64_t Merges = 0;        ///< Class unions performed.
  uint64_t RebuildRounds = 0; ///< Congruence worklist rounds run.

  EGraphStats &operator+=(const EGraphStats &O) {
    Classes += O.Classes;
    Nodes += O.Nodes;
    Merges += O.Merges;
    RebuildRounds += O.RebuildRounds;
    return *this;
  }
};

class EGraph {
public:
  explicit EGraph(AlgebraContext &Ctx) : Ctx(Ctx) {}

  /// Routes builtin evaluation (SAME on literals, Int ops, Bool
  /// connectives) through \p Engine so the e-graph shares the engine's
  /// native semantics. Without an evaluator only the structural rules
  /// (if-then-else folding, SAME over one class) apply.
  void setEvaluator(RewriteEngine *Engine) { Eval = Engine; }

  /// Registers \p Term and every subterm as e-nodes (each its own
  /// singleton class unless already present) and returns the node index.
  uint32_t add(TermId Term);

  bool contains(TermId Term) const { return NodeIndex.count(Term) != 0; }

  /// Asserts that both terms are registered; unions their classes.
  /// Returns true when two distinct classes were united.
  bool merge(TermId A, TermId B);

  /// Runs congruence closure to a fixpoint: every node whose children's
  /// classes changed is re-created over the class representatives, and
  /// the hash-consed collision with its congruent twin triggers the
  /// merge. Returns the number of worklist rounds run.
  unsigned rebuild();

  /// True when the two registered terms are in one class.
  bool same(TermId A, TermId B) {
    return findNode(nodeOf(A)) == findNode(nodeOf(B));
  }

  /// The canonical representative term of \p Term's class.
  TermId repr(TermId Term) { return RepOf[findNode(nodeOf(Term))]; }

  /// True when some class holds two distinct atomic values (two
  /// different literals, true and false, or a value and error): the
  /// assumptions merged into this graph are unsatisfiable.
  bool contradiction() const { return Contradiction; }

  /// Registered terms in insertion order. Grows during rebuild; index
  /// into it rather than holding iterators.
  const std::vector<TermId> &nodes() const { return Nodes; }

  /// Class root (node index) of a registered term.
  uint32_t find(TermId Term) { return findNode(nodeOf(Term)); }

  size_t numNodes() const { return Nodes.size(); }
  size_t numClasses() const { return Nodes.size() - MergedAway; }
  uint64_t merges() const { return Merges; }
  uint64_t rebuildRounds() const { return RebuildRounds; }

  EGraphStats stats() const {
    EGraphStats S;
    S.Classes = numClasses();
    S.Nodes = numNodes();
    S.Merges = Merges;
    S.RebuildRounds = RebuildRounds;
    return S;
  }

private:
  uint32_t nodeOf(TermId Term) const {
    auto It = NodeIndex.find(Term);
    return It == NodeIndex.end() ? UINT32_MAX : It->second;
  }
  uint32_t findNode(uint32_t Idx);
  bool mergeNodes(uint32_t A, uint32_t B);
  /// Re-creates node \p Idx over its children's class representatives
  /// and merges with the congruent twin; applies builtin semantics.
  void canonicalize(uint32_t Idx);
  /// Representative preference: lower rank wins, ties to older node.
  unsigned repRank(TermId Term) const;
  /// Atom, Int, error, or a Bool literal: a decided value whose
  /// disagreement within one class is a contradiction.
  bool isAtomicValue(TermId Term) const;

  AlgebraContext &Ctx;
  RewriteEngine *Eval = nullptr;

  std::vector<TermId> Nodes;
  std::unordered_map<TermId, uint32_t> NodeIndex;
  /// Union-find parent per node; the root of a class is always its
  /// smallest member index (deterministic canonical root).
  std::vector<uint32_t> UF;
  /// Valid at roots: the class's representative term.
  std::vector<TermId> RepOf;
  /// Valid at roots: the atomic value the class resolved to, if any.
  std::vector<TermId> ValueOf;
  /// Valid at roots: indices of op-nodes with a direct child in this
  /// class (congruence fan-out for the worklist).
  std::vector<std::vector<uint32_t>> ParentsOf;
  /// Ground flag per node (no variables anywhere below).
  std::vector<uint8_t> GroundOf;
  /// Nodes awaiting (re)canonicalization.
  std::vector<uint32_t> Pending;

  size_t MergedAway = 0;
  uint64_t Merges = 0;
  uint64_t RebuildRounds = 0;
  bool Contradiction = false;
};

} // namespace algspec

#endif // ALGSPEC_EGRAPH_EGRAPH_H
