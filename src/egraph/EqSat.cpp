//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "egraph/EqSat.h"

#include "ast/AlgebraContext.h"
#include "rewrite/Engine.h"
#include "rewrite/Matcher.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"

#include <algorithm>
#include <string>

using namespace algspec;

namespace {

/// Collects the variables of \p Term into \p Out (deduplicated).
void collectVarSet(const AlgebraContext &Ctx, TermId Term,
                   std::vector<VarId> &Out) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (std::find(Out.begin(), Out.end(), Node.Var) == Out.end())
      Out.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVarSet(Ctx, Child, Out);
}

} // namespace

EqSatProver::EqSatProver(AlgebraContext &Ctx, const RewriteSystem &System,
                         RewriteEngine &Eval, EqSatOptions Options)
    : Ctx(Ctx), System(System), Eval(Eval), Options(Options), Base(Ctx) {
  Base.setEvaluator(&Eval);
  // A rule runs backward only when its sides bind the same variables
  // (construction already guarantees vars(Rhs) <= vars(Lhs)) and the
  // right-hand side is an application the matcher can key on.
  BackOk.reserve(System.rules().size());
  for (const Rule &R : System.rules()) {
    bool Ok = Ctx.node(R.Rhs).Kind == TermKind::Op;
    if (Ok) {
      std::vector<VarId> LhsVars, RhsVars;
      collectVarSet(Ctx, R.Lhs, LhsVars);
      collectVarSet(Ctx, R.Rhs, RhsVars);
      for (VarId V : LhsVars)
        Ok = Ok && std::find(RhsVars.begin(), RhsVars.end(), V) !=
                       RhsVars.end();
    }
    BackOk.push_back(Ok ? 1 : 0);
  }
}

void EqSatProver::enableInduction(SortId RepSort,
                                  std::vector<OpId> Gens) {
  InductionSort = RepSort;
  Generators = std::move(Gens);
  deriveInvariants();
}

unsigned EqSatProver::termDepth(TermId Term) {
  auto It = DepthMemo.find(Term);
  if (It != DepthMemo.end())
    return It->second;
  unsigned D = 1;
  if (Ctx.node(Term).Kind == TermKind::Op)
    for (TermId Child : Ctx.children(Term))
      D = std::max(D, 1 + termDepth(Child));
  DepthMemo.emplace(Term, D);
  return D;
}

void EqSatProver::deriveInvariants() {
  Invariants.clear();
  Stats.Invariants = 0;
  if (!InductionSort.isValid() || Generators.empty())
    return;
  auto Decided = [&](TermId T) {
    const TermNode &N = Ctx.node(T);
    return N.Kind == TermKind::Atom || N.Kind == TermKind::Int ||
           N.Kind == TermKind::Error || T == Ctx.trueTerm() ||
           T == Ctx.falseTerm();
  };
  // Evaluates Op over one generator image in a scratch graph. With a
  // valid candidate the hypothesis Op(w) = Cand is assumed for the
  // image's induction-sorted arguments (the induction step); without
  // one the image must decide on its own (a base case).
  auto EvalOverGen = [&](OpId Op, OpId Gen, TermId Cand) -> TermId {
    std::vector<TermId> Args;
    for (SortId S : Ctx.op(Gen).ArgSorts)
      Args.push_back(Ctx.makeVar(
          Ctx.addVar("inv#" + std::to_string(++FreshCounter), S)));
    TermId Probe = Ctx.makeOp(Op, {Ctx.makeOp(Gen, Args)});
    EGraph G(Ctx);
    G.setEvaluator(&Eval);
    G.add(Probe);
    if (Cand.isValid())
      for (TermId A : Args)
        if (Ctx.sortOf(A) == InductionSort) {
          TermId Hyp = Ctx.makeOp(Op, {A});
          G.add(Hyp);
          G.add(Cand);
          G.merge(Hyp, Cand);
        }
    std::unordered_set<uint64_t> Applied;
    DepthCap = termDepth(Probe) + Options.DepthSlack;
    saturate(G, Applied, Options.MaxBranchNodes);
    BranchTotals += G.stats();
    if (G.contradiction())
      return TermId();
    TermId R = G.repr(Probe);
    return Decided(R) ? R : TermId();
  };
  // Every unary op over the induction sort is a candidate: if it takes
  // one fixed atomic value on all generator images — proved by
  // structural induction over the generators — that value holds for
  // every variable ranging over the reachable domain. This is how the
  // prover learns the paper's Assumption 1 (IS_NEWSTACK?(v) = false on
  // valid representations) from the axioms alone.
  for (unsigned I = 0; I != Ctx.numOps(); ++I) {
    OpId Op(I);
    const OpInfo &Info = Ctx.op(Op);
    if (Info.isConstructor() || Info.isBuiltin())
      continue;
    if (Info.ArgSorts.size() != 1 || Info.ArgSorts[0] != InductionSort)
      continue;
    TermId Cand;
    bool Ok = true;
    std::vector<OpId> NeedHyp;
    for (OpId Gen : Generators) {
      TermId V = EvalOverGen(Op, Gen, TermId());
      if (!V.isValid()) {
        NeedHyp.push_back(Gen);
        continue;
      }
      if (Cand.isValid() && V != Cand) {
        Ok = false;
        break;
      }
      Cand = V;
    }
    if (!Ok || !Cand.isValid())
      continue;
    for (OpId Gen : NeedHyp)
      if (EvalOverGen(Op, Gen, Cand) != Cand) {
        Ok = false;
        break;
      }
    if (!Ok)
      continue;
    Invariants.emplace_back(Op, Cand);
    ++Stats.Invariants;
  }
}

void EqSatProver::assertInvariants(EGraph &G, TermId Lhs, TermId Rhs,
                                   const std::vector<Binding> &Assumes) {
  if (Invariants.empty())
    return;
  std::vector<VarId> Vars;
  collectVarSet(Ctx, Lhs, Vars);
  collectVarSet(Ctx, Rhs, Vars);
  for (const Binding &B : Assumes) {
    collectVarSet(Ctx, B.A, Vars);
    collectVarSet(Ctx, B.B, Vars);
  }
  for (VarId V : Vars) {
    if (Ctx.var(V).Sort != InductionSort)
      continue;
    for (const auto &[Op, Value] : Invariants) {
      TermId App = Ctx.makeOp(Op, {Ctx.makeVar(V)});
      G.add(App);
      G.add(Value);
      G.merge(App, Value);
    }
  }
}

EqSatProverStats EqSatProver::stats() const {
  EqSatProverStats S = Stats;
  S.Graph = Base.stats();
  S.Graph += BranchTotals;
  return S;
}

bool EqSatProver::applyRules(EGraph &G,
                             std::unordered_set<uint64_t> &Applied,
                             uint64_t MaxNodes, bool &OutOfFuel,
                             bool &Skipped) {
  const std::vector<Rule> &Rules = System.rules();
  bool Changed = false;
  // The node list grows while rules fire; newly added nodes are visited
  // in this same sweep (insertion order keeps it deterministic).
  for (size_t NI = 0; NI != G.nodes().size(); ++NI) {
    if (G.numNodes() > MaxNodes) {
      OutOfFuel = true;
      break;
    }
    TermId Term = G.nodes()[NI];
    const TermNode Node = Ctx.node(Term);
    if (Node.Kind != TermKind::Op)
      continue;
    for (size_t RI = 0; RI != Rules.size(); ++RI) {
      const Rule &R = Rules[RI];
      // Forward: Lhs matches this node, merge with the instantiated Rhs.
      if (R.HeadOp == Node.Op) {
        uint64_t Key = (uint64_t(RI) << 33) | (uint64_t(NI) << 1);
        if (Applied.insert(Key).second) {
          Substitution Subst;
          if (matchTerm(Ctx, R.Lhs, Term, Subst)) {
            TermId Inst = applySubstitution(Ctx, R.Rhs, Subst);
            if (termDepth(Inst) > DepthCap)
              Skipped = true;
            else {
              G.add(Inst);
              Changed |= G.merge(Term, Inst);
            }
          }
        }
      }
      // Backward: Rhs matches this node, merge with the instantiated
      // Lhs — this is what makes the rules a congruence instead of a
      // reduction.
      if (BackOk[RI] && Ctx.node(R.Rhs).Op == Node.Op) {
        uint64_t Key = (uint64_t(RI) << 33) | (uint64_t(NI) << 1) | 1;
        if (Applied.insert(Key).second) {
          Substitution Subst;
          if (matchTerm(Ctx, R.Rhs, Term, Subst)) {
            TermId Inst = applySubstitution(Ctx, R.Lhs, Subst);
            if (termDepth(Inst) > DepthCap)
              Skipped = true;
            else {
              G.add(Inst);
              Changed |= G.merge(Term, Inst);
            }
          }
        }
      }
    }
  }
  return Changed;
}

SatVerdict EqSatProver::saturate(EGraph &G,
                                 std::unordered_set<uint64_t> &Applied,
                                 uint64_t MaxNodes, TermId GoalA,
                                 TermId GoalB) {
  G.rebuild();
  bool Skipped = false;
  for (unsigned Round = 0; Round != Options.MaxRounds; ++Round) {
    // Once the goal classes meet (or the assumptions contradict) the
    // answer cannot change; stop burning rounds.
    if (GoalA.isValid() && (G.contradiction() || G.same(GoalA, GoalB)))
      return SatVerdict::Saturated;
    bool OutOfFuel = false;
    bool Changed = applyRules(G, Applied, MaxNodes, OutOfFuel, Skipped);
    G.rebuild();
    if (G.contradiction())
      return SatVerdict::Saturated;
    if (OutOfFuel)
      break;
    if (!Changed) {
      // A fixpoint with depth-capped instantiations skipped is not a
      // true fixpoint; stay honest about it.
      if (!Skipped)
        return SatVerdict::Saturated;
      break;
    }
  }
  ++Stats.FuelExhausted;
  return SatVerdict::FuelExhausted;
}

TermId EqSatProver::findUndecidedGuard(EGraph &G, TermId Lhs, TermId Rhs) {
  // Classes reachable from the goal terms, via any member's children.
  const std::vector<TermId> &Nodes = G.nodes();
  std::unordered_map<uint32_t, std::vector<uint32_t>> Members;
  for (uint32_t NI = 0; NI != Nodes.size(); ++NI)
    Members[G.find(Nodes[NI])].push_back(NI);

  std::vector<uint32_t> Work{G.find(Lhs), G.find(Rhs)};
  std::unordered_set<uint32_t> Reach(Work.begin(), Work.end());
  while (!Work.empty()) {
    uint32_t Root = Work.back();
    Work.pop_back();
    for (uint32_t NI : Members[Root]) {
      TermId Term = Nodes[NI];
      if (Ctx.node(Term).Kind != TermKind::Op)
        continue;
      for (TermId Child : Ctx.children(Term)) {
        uint32_t CR = G.find(Child);
        if (Reach.insert(CR).second)
          Work.push_back(CR);
      }
    }
  }

  for (uint32_t NI = 0; NI != Nodes.size(); ++NI) {
    TermId Term = Nodes[NI];
    const TermNode &Node = Ctx.node(Term);
    if (Node.Kind != TermKind::Op ||
        Ctx.op(Node.Op).Builtin != BuiltinOp::Ite)
      continue;
    if (!Reach.count(G.find(Term)))
      continue;
    TermId Cond = G.repr(Ctx.children(Term)[0]);
    if (Cond == Ctx.trueTerm() || Cond == Ctx.falseTerm() ||
        Ctx.isError(Cond))
      continue;
    return Cond;
  }
  return TermId();
}

VarId EqSatProver::findInductionVar(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var)
    return Ctx.var(Node.Var).Sort == InductionSort ? Node.Var : VarId();
  for (TermId Child : Ctx.children(Term))
    if (VarId V = findInductionVar(Child); V.isValid())
      return V;
  return VarId();
}

bool EqSatProver::proveRec(TermId Lhs, TermId Rhs,
                           std::vector<Binding> Assumes, unsigned Depth,
                           unsigned &Branches) {
  if (++Branches > Options.MaxBranches)
    return false;

  EGraph G(Ctx);
  G.setEvaluator(&Eval);
  G.add(Lhs);
  G.add(Rhs);
  unsigned MaxD = std::max(termDepth(Lhs), termDepth(Rhs));
  for (const Binding &B : Assumes) {
    G.add(B.A);
    G.add(B.B);
    G.merge(B.A, B.B);
    MaxD = std::max({MaxD, termDepth(B.A), termDepth(B.B)});
    // A SAME assumed true identifies its arguments (SAME is equality on
    // the carrier); mirrored from the joiner's split discipline.
    const TermNode &N = Ctx.node(B.A);
    if (B.B == Ctx.trueTerm() && N.Kind == TermKind::Op &&
        Ctx.op(N.Op).Builtin == BuiltinOp::Same) {
      auto Args = Ctx.children(B.A);
      G.merge(Args[0], Args[1]);
    }
  }
  assertInvariants(G, Lhs, Rhs, Assumes);
  std::unordered_set<uint64_t> Applied;
  DepthCap = MaxD + Options.DepthSlack;
  SatVerdict V = saturate(G, Applied, Options.MaxBranchNodes, Lhs, Rhs);
  if (Depth == 0)
    Verdict = V;

  bool Done = false;
  if (G.contradiction())
    Done = true; // assumptions cover no ground instance: vacuous
  else if (G.same(Lhs, Rhs))
    Done = true;
  if (Done || Depth >= Options.MaxSplitDepth) {
    BranchTotals += G.stats();
    return Done;
  }

  TermId Guard = findUndecidedGuard(G, Lhs, Rhs);
  BranchTotals += G.stats();
  if (!Guard.isValid())
    return false;

  // Generator split: a guard stuck on a representation-sorted variable
  // (IS_NEWSTACK?(x), IS_UNDEFINED?(TOP(x), i), ...) only decides once
  // the variable takes a generator shape. Splitting by the last
  // generator application is a complete case analysis of the Reachable
  // domain; each branch re-proves the goal with the variable replaced
  // by one generator image over fresh argument variables.
  if (!Generators.empty()) {
    if (VarId IV = findInductionVar(Guard); IV.isValid()) {
      ++Stats.GenSplits;
      for (OpId Gen : Generators) {
        const OpInfo &Info = Ctx.op(Gen);
        std::vector<TermId> Args;
        for (SortId ArgSort : Info.ArgSorts) {
          std::string Name = std::string(Ctx.varName(IV)) + "#" +
                             std::to_string(++FreshCounter);
          Args.push_back(Ctx.makeVar(Ctx.addVar(Name, ArgSort)));
        }
        TermId Image = Ctx.makeOp(Gen, Args);
        Substitution Subst;
        Subst.bind(IV, Image);
        std::vector<Binding> Sub;
        Sub.reserve(Assumes.size());
        for (const Binding &B : Assumes)
          Sub.push_back({applySubstitution(Ctx, B.A, Subst),
                         applySubstitution(Ctx, B.B, Subst)});
        if (!proveRec(applySubstitution(Ctx, Lhs, Subst),
                      applySubstitution(Ctx, Rhs, Subst), std::move(Sub),
                      Depth + 1, Branches))
          return false;
      }
      return true;
    }
  }

  // Guard split: the condition denotes true, false, or error on every
  // ground instance; all three branches must close.
  ++Stats.GuardSplits;
  for (TermId Value : {Ctx.trueTerm(), Ctx.falseTerm(),
                       Ctx.makeError(Ctx.sortOf(Guard))}) {
    std::vector<Binding> Sub = Assumes;
    Sub.push_back({Guard, Value});
    if (!proveRec(Lhs, Rhs, std::move(Sub), Depth + 1, Branches))
      return false;
  }
  return true;
}

bool EqSatProver::prove(TermId Lhs, TermId Rhs) {
  Base.add(Lhs);
  Base.add(Rhs);
  DepthCap = std::max(termDepth(Lhs), termDepth(Rhs)) + Options.DepthSlack;
  Verdict = saturate(Base, BaseApplied, Options.MaxBaseNodes, Lhs, Rhs);
  if (Base.contradiction()) {
    // The axioms alone derived a contradiction: the workspace is
    // degenerate and every "proof" would be vacuous. Claim nothing.
    ++Stats.Failures;
    return false;
  }
  if (Base.same(Lhs, Rhs)) {
    ++Stats.Proofs;
    return true;
  }
  unsigned Branches = 0;
  bool Ok = proveRec(Lhs, Rhs, {}, 0, Branches);
  if (Ok)
    ++Stats.Proofs;
  else
    ++Stats.Failures;
  return Ok;
}

std::vector<uint8_t> EqSatProver::proveBatch(
    const std::vector<std::pair<TermId, TermId>> &Pairs) {
  unsigned MaxD = 1;
  for (const auto &[A, B] : Pairs) {
    Base.add(A);
    Base.add(B);
    MaxD = std::max({MaxD, termDepth(A), termDepth(B)});
  }
  DepthCap = MaxD + Options.DepthSlack;
  Verdict = saturate(Base, BaseApplied, Options.MaxBaseNodes);
  std::vector<uint8_t> Out;
  Out.reserve(Pairs.size());
  bool Degenerate = Base.contradiction();
  for (const auto &[A, B] : Pairs) {
    bool Proved = !Degenerate && Base.same(A, B);
    if (Proved)
      ++Stats.Proofs;
    else
      ++Stats.Failures;
    Out.push_back(Proved ? 1 : 0);
  }
  return Out;
}
