//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test oracles for axiom instances (Gaudel & Le Gall): decide whether
/// two ground terms denote the same value of the implementation.
///
/// When the binding can compare values of the axiom's sort directly
/// (bound equality, or the Bool/Int/atom defaults), the oracle is that
/// comparison. For sorts without equality the oracle is a finite set of
/// observable contexts computed from the signature: terms C[_] with one
/// hole of the sort whose result sort *is* comparable. Two values are
/// deemed equal when every context agrees on them — the observational
/// equality the paper's section-5 discipline actually promises.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_TESTGEN_ORACLE_H
#define ALGSPEC_TESTGEN_ORACLE_H

#include "ast/Ids.h"
#include "support/Error.h"

#include <span>
#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;
class ModelBinding;
class Spec;
class TermEnumerator;
class Value;

/// Tunables for observer-context construction.
struct OracleOptions {
  /// Operations stacked above the hole (observation depth).
  unsigned MaxContextDepth = 2;
  /// Cap on finished contexts per sort.
  size_t MaxContexts = 64;
  /// Depth bound for the ground terms filling non-hole argument slots.
  unsigned FillerDepth = 2;
  /// Filler terms tried per non-hole argument position.
  size_t FillersPerPosition = 2;
};

/// One observer: a term over a single hole variable, with a result sort
/// the binding can compare.
struct ObserverContext {
  TermId Context;
  VarId Hole;
  SortId ResultSort;
};

/// The oracle's answer for one axiom instance.
struct OracleVerdict {
  bool Equal = false;
  /// When unequal: what distinguished the sides, rendered.
  std::string Detail;
};

/// Renders an observable value (Bool/Int/atom) for reports; errors render
/// as "error", unobservable representations as "<sort value>".
std::string renderObservable(const AlgebraContext &Ctx, SortId Sort,
                             const Value &V);

/// The oracle for one sort.
class Oracle {
public:
  /// Builds the oracle for values of \p Sort against \p B. Uses direct
  /// comparison when the binding has an equality for the sort (unless
  /// \p ForceObservers); otherwise computes the observer-context set
  /// from the operations declared by \p Specs, restricted to operations
  /// the binding can actually run. Construction is deterministic:
  /// contexts come out in spec/operation declaration order.
  static Oracle build(AlgebraContext &Ctx,
                      std::span<const Spec *const> Specs, SortId Sort,
                      ModelBinding &B, TermEnumerator &Enum,
                      bool ForceObservers, const OracleOptions &Options);

  /// False when the sort has neither an equality nor any observer
  /// context — the campaign reports this as a named obstruction.
  bool decidable() const { return Direct || !Observers.empty(); }
  bool usesObservers() const { return !Direct; }
  size_t observerCount() const { return Observers.size(); }
  SortId sort() const { return ValueSort; }
  std::span<const ObserverContext> observers() const { return Observers; }

  /// Compares the ground terms \p L and \p R by evaluating them (and,
  /// for observer oracles, their observations) through \p B. Fails only
  /// on evaluation errors the campaign reports as obstructions (unbound
  /// operations, missing equalities); in-algebra errors are values and
  /// compare equal to each other only.
  Result<OracleVerdict> compare(ModelBinding &B, TermId L, TermId R) const;

private:
  SortId ValueSort;
  bool Direct = true;
  std::vector<ObserverContext> Observers;
};

} // namespace algspec

#endif // ALGSPEC_TESTGEN_ORACLE_H
