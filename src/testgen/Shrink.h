//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy counterexample shrinking for testgen campaigns.
///
/// A failing axiom instance is a variable assignment; shrinking walks it
/// toward a local minimum by replacing one variable's term at a time
/// with a strictly smaller candidate — a proper subterm of the same sort
/// or a smaller enumerated term — keeping any replacement under which
/// the instance still fails. Every accepted step strictly decreases the
/// assignment's total size, so the descent terminates, and the result is
/// minimal in its candidate neighborhood: no single replacement still
/// fails.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_TESTGEN_SHRINK_H
#define ALGSPEC_TESTGEN_SHRINK_H

#include "ast/Ids.h"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace algspec {

class AlgebraContext;
class TermEnumerator;

/// Candidate replacements for \p Term: its proper subterms of the same
/// sort (in preorder), then enumerated ground terms of the sort up to
/// \p MaxDepth — all strictly smaller than \p Term (tree size),
/// deduplicated, in a deterministic order. Exposed so the minimality
/// tests can re-check a shrunk instance's whole neighborhood.
std::vector<TermId> shrinkCandidates(AlgebraContext &Ctx,
                                     TermEnumerator &Enum, unsigned MaxDepth,
                                     TermId Term);

/// A shrunk assignment plus the number of accepted replacements.
struct ShrinkOutcome {
  std::vector<TermId> Assignment;
  uint64_t Steps = 0;
};

/// Greedy descent from \p Assignment (one term per variable, parallel to
/// \p Vars). \p StillFails must return true when the given assignment
/// still makes the axiom instance fail; it is only ever called on
/// candidate assignments, never on the original.
ShrinkOutcome shrinkAssignment(
    AlgebraContext &Ctx, TermEnumerator &Enum, unsigned MaxDepth,
    std::span<const VarId> Vars, std::vector<TermId> Assignment,
    const std::function<bool(std::span<const TermId>)> &StillFails);

} // namespace algspec

#endif // ALGSPEC_TESTGEN_SHRINK_H
