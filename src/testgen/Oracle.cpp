//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Oracle.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/TermEnumerator.h"
#include "model/ModelBinding.h"
#include "model/Value.h"
#include "rewrite/Substitution.h"

#include <algorithm>
#include <string>

using namespace algspec;

std::string algspec::renderObservable(const AlgebraContext &Ctx, SortId Sort,
                                      const Value &V) {
  if (V.isError())
    return "error";
  switch (Ctx.sort(Sort).Kind) {
  case SortKind::Bool:
    if (V.holds<bool>())
      return V.get<bool>() ? "true" : "false";
    break;
  case SortKind::Int:
    if (V.holds<int64_t>())
      return std::to_string(V.get<int64_t>());
    break;
  case SortKind::Atom:
    if (V.holds<std::string>())
      return "'" + V.get<std::string>();
    break;
  case SortKind::User:
    break;
  }
  return "<" + std::string(Ctx.sortName(Sort)) + " value>";
}

Oracle Oracle::build(AlgebraContext &Ctx, std::span<const Spec *const> Specs,
                     SortId Sort, ModelBinding &B, TermEnumerator &Enum,
                     bool ForceObservers, const OracleOptions &Options) {
  Oracle O;
  O.ValueSort = Sort;

  // Bool/Int/atom values are observations already; observer contexts
  // only make sense for user sorts.
  bool User = Ctx.sort(Sort).Kind == SortKind::User;
  if (!User || (!ForceObservers && B.hasEquality(Sort)))
    return O;

  O.Direct = false;
  VarId Hole = Ctx.addVar("_", Sort);
  std::vector<TermId> Frontier = {Ctx.makeVar(Hole)};

  // Breadth-first over observation depth: wrap every partial context in
  // every runnable operation that accepts its sort; contexts reaching a
  // comparable result sort are finished oracles, the rest grow further.
  // Everything iterates in declaration order, so the set — and every
  // report derived from it — is deterministic.
  for (unsigned Depth = 1;
       Depth <= Options.MaxContextDepth && !Frontier.empty(); ++Depth) {
    std::vector<TermId> Next;
    for (TermId Partial : Frontier) {
      SortId PartialSort = Ctx.sortOf(Partial);
      for (const Spec *S : Specs) {
        for (OpId Op : S->operations()) {
          const OpInfo &Info = Ctx.op(Op);
          if (Info.Builtin != BuiltinOp::None || !B.isBoundOrBuiltin(Op))
            continue;
          for (size_t Pos = 0; Pos != Info.ArgSorts.size(); ++Pos) {
            if (Info.ArgSorts[Pos] != PartialSort)
              continue;
            // Ground fillers for the non-hole argument slots.
            std::vector<const std::vector<TermId> *> Slots;
            std::vector<size_t> SlotSizes;
            bool Inhabited = true;
            for (size_t Q = 0; Q != Info.ArgSorts.size(); ++Q) {
              if (Q == Pos)
                continue;
              const std::vector<TermId> &Fill =
                  Enum.enumerate(Info.ArgSorts[Q], Options.FillerDepth);
              if (Fill.empty()) {
                Inhabited = false;
                break;
              }
              Slots.push_back(&Fill);
              SlotSizes.push_back(
                  std::min(Fill.size(), Options.FillersPerPosition));
            }
            if (!Inhabited)
              continue;
            size_t Combos = 1;
            for (size_t N : SlotSizes)
              Combos *= N;
            for (size_t Flat = 0; Flat != Combos; ++Flat) {
              std::vector<TermId> Args(Info.ArgSorts.size());
              size_t Rem = Flat, Slot = 0;
              for (size_t Q = 0; Q != Info.ArgSorts.size(); ++Q) {
                if (Q == Pos) {
                  Args[Q] = Partial;
                  continue;
                }
                Args[Q] = (*Slots[Slot])[Rem % SlotSizes[Slot]];
                Rem /= SlotSizes[Slot];
                ++Slot;
              }
              TermId Context = Ctx.makeOp(Op, Args);
              if (B.hasEquality(Info.ResultSort)) {
                if (O.Observers.size() < Options.MaxContexts)
                  O.Observers.push_back({Context, Hole, Info.ResultSort});
              } else if (Depth < Options.MaxContextDepth &&
                         Next.size() < Options.MaxContexts) {
                Next.push_back(Context);
              }
            }
          }
        }
      }
    }
    Frontier = std::move(Next);
  }
  return O;
}

Result<OracleVerdict> Oracle::compare(ModelBinding &B, TermId L,
                                      TermId R) const {
  AlgebraContext &Ctx = B.context();
  Result<Value> LV = B.evaluate(L);
  if (!LV)
    return LV.error();
  Result<Value> RV = B.evaluate(R);
  if (!RV)
    return RV.error();

  // In-algebra errors are values: equal to each other, distinguishable
  // from everything else without any oracle machinery.
  if (LV->isError() || RV->isError()) {
    if (LV->isError() == RV->isError())
      return OracleVerdict{true, ""};
    return OracleVerdict{false, LV->isError() ? "lhs is error, rhs is not"
                                              : "rhs is error, lhs is not"};
  }

  if (Direct) {
    Result<bool> Eq = B.equal(ValueSort, *LV, *RV);
    if (!Eq)
      return Eq.error();
    if (*Eq)
      return OracleVerdict{true, ""};
    if (Ctx.sort(ValueSort).Kind != SortKind::User)
      return OracleVerdict{false,
                           "lhs = " + renderObservable(Ctx, ValueSort, *LV) +
                               ", rhs = " +
                               renderObservable(Ctx, ValueSort, *RV)};
    return OracleVerdict{false, "values of sort '" +
                                    std::string(Ctx.sortName(ValueSort)) +
                                    "' differ under the bound equality"};
  }

  for (const ObserverContext &C : Observers) {
    Substitution SigmaL, SigmaR;
    SigmaL.bind(C.Hole, L);
    SigmaR.bind(C.Hole, R);
    TermId ObsL = applySubstitution(Ctx, C.Context, SigmaL);
    TermId ObsR = applySubstitution(Ctx, C.Context, SigmaR);
    Result<Value> OL = B.evaluate(ObsL);
    if (!OL)
      return OL.error();
    Result<Value> OR = B.evaluate(ObsR);
    if (!OR)
      return OR.error();
    std::string Observer = "observer " + printTerm(Ctx, C.Context);
    if (OL->isError() != OR->isError())
      return OracleVerdict{false, Observer +
                                      (OL->isError()
                                           ? ": lhs observes error, rhs "
                                             "does not"
                                           : ": rhs observes error, lhs "
                                             "does not")};
    if (OL->isError())
      continue;
    Result<bool> Eq = B.equal(C.ResultSort, *OL, *OR);
    if (!Eq)
      return Eq.error();
    if (!*Eq)
      return OracleVerdict{
          false, Observer + ": lhs = " +
                     renderObservable(Ctx, C.ResultSort, *OL) + ", rhs = " +
                     renderObservable(Ctx, C.ResultSort, *OR)};
  }
  return OracleVerdict{true, ""};
}
