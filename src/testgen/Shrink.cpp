//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Shrink.h"

#include "ast/AlgebraContext.h"
#include "check/TermEnumerator.h"

#include <unordered_set>

using namespace algspec;

/// Collects the proper subterms of \p Term with sort \p Sort, preorder.
static void collectSubterms(const AlgebraContext &Ctx, TermId Term,
                            SortId Sort, TermId Root,
                            std::vector<TermId> &Out,
                            std::unordered_set<TermId> &Seen) {
  if (Term != Root && Ctx.sortOf(Term) == Sort && Seen.insert(Term).second)
    Out.push_back(Term);
  for (TermId Child : Ctx.children(Term))
    collectSubterms(Ctx, Child, Sort, Root, Out, Seen);
}

std::vector<TermId> algspec::shrinkCandidates(AlgebraContext &Ctx,
                                              TermEnumerator &Enum,
                                              unsigned MaxDepth,
                                              TermId Term) {
  SortId Sort = Ctx.sortOf(Term);
  size_t Size = Ctx.treeSize(Term);
  std::vector<TermId> Candidates;
  std::unordered_set<TermId> Seen;
  Seen.insert(Term);
  collectSubterms(Ctx, Term, Sort, Term, Candidates, Seen);
  for (TermId Small : Enum.enumerate(Sort, MaxDepth)) {
    if (Ctx.treeSize(Small) >= Size)
      continue;
    if (Seen.insert(Small).second)
      Candidates.push_back(Small);
  }
  return Candidates;
}

ShrinkOutcome algspec::shrinkAssignment(
    AlgebraContext &Ctx, TermEnumerator &Enum, unsigned MaxDepth,
    std::span<const VarId> Vars, std::vector<TermId> Assignment,
    const std::function<bool(std::span<const TermId>)> &StillFails) {
  ShrinkOutcome Outcome;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I != Vars.size() && !Progress; ++I) {
      for (TermId Candidate :
           shrinkCandidates(Ctx, Enum, MaxDepth, Assignment[I])) {
        TermId Saved = Assignment[I];
        Assignment[I] = Candidate;
        if (StillFails(Assignment)) {
          // Keep the strictly smaller failing instance and restart the
          // descent from it.
          ++Outcome.Steps;
          Progress = true;
          break;
        }
        Assignment[I] = Saved;
      }
    }
  }
  Outcome.Assignment = std::move(Assignment);
  return Outcome;
}
