//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Axiom-derived test campaigns against real implementations (Gaudel &
/// Le Gall, "Testing Data Types Implementations from Algebraic
/// Specifications").
///
/// The exhaustive test set of a spec is every ground instance of every
/// axiom — infinite. A campaign makes it finite under two explicit
/// hypotheses, each accounted for in the report:
///
///  - regularity: instances whose variable terms stay within a depth
///    bound stand in for all instances (the depth-bounded space is the
///    per-axiom accounting figure);
///  - uniformity (optional): one representative per variable/
///    constructor-case cell stands in for the whole cell — the cells
///    come from the same top-constructor case split the pattern-matrix
///    machinery uses.
///
/// A seeded-random mode samples the depth-bounded space instead of
/// enumerating it. Each planned instance is judged by an Oracle (bound
/// equality or observable contexts); a failing instance is shrunk to a
/// locally minimal counterexample and rendered with the spec-side
/// normal form against the implementation's answer. The instance sweep
/// shards over the parallel driver; reports are byte-identical at any
/// job count because the plan is generated serially up front and
/// failures are re-evaluated on the caller's binding in plan order.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_TESTGEN_TESTGEN_H
#define ALGSPEC_TESTGEN_TESTGEN_H

#include "check/TermEnumerator.h"
#include "support/Parallel.h"
#include "testgen/Oracle.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;
class JsonWriter;
class ModelBinding;
class RewriteEngine;
class Spec;

/// Tunables for one campaign.
struct TestGenOptions {
  /// Regularity hypothesis: depth bound for variable instantiations.
  unsigned MaxDepth = 3;
  /// Cap on planned instances per axiom.
  size_t MaxInstancesPerAxiom = 50000;
  /// When nonzero, sample this many instances per axiom from the
  /// depth-bounded space (seeded by Seed) instead of enumerating it.
  size_t RandomCount = 0;
  uint64_t Seed = 0;
  /// Uniformity hypothesis: keep one representative per
  /// variable/constructor-case cell (ignored in random mode).
  bool Uniformity = false;
  /// Force observer-context oracles even where an equality is bound.
  bool ForceObservers = false;
  OracleOptions Oracles;
  EnumeratorOptions Enum;
  /// Parallel sharding of the instance sweep; reports are byte-identical
  /// at any job count. Takes effect only with a BindingFactory, under
  /// the same concurrency contract as ModelTestOptions::BindingFactory.
  /// The factory receives the worker's replica context and its
  /// re-elaborated specs (operation names resolve per spec, not
  /// globally); returning null falls the worker back to flagging.
  ParallelOptions Par;
  std::function<std::unique_ptr<ModelBinding>(AlgebraContext &,
                                              std::span<const Spec>)>
      BindingFactory;
  /// When set, failures carry the spec-side normal form of the failing
  /// instance (what the axioms say the answer is).
  RewriteEngine *SpecEngine = nullptr;
};

/// A shrunk counterexample, fully rendered.
struct TestGenFailure {
  /// "q := ADD(NEW, 'item1), i := 'item2" — the shrunk assignment.
  std::string Assignment;
  std::string Lhs; ///< Instantiated left side.
  std::string Rhs; ///< Instantiated right side.
  /// Spec-side normal form of the instantiated left side (empty without
  /// a SpecEngine).
  std::string SpecNormalForm;
  /// What the implementation answered: observable values, or the
  /// distinguishing observation.
  std::string ImplAnswer;
  uint64_t ShrinkSteps = 0;
};

/// Per-axiom campaign outcome, with per-hypothesis accounting.
struct AxiomCampaign {
  unsigned AxiomNumber = 0;
  bool Passed = true;
  bool Skipped = false; ///< Uninhabited sort; no instances exist.
  /// Regularity accounting: the full depth-bounded ground space
  /// (clamped at uint64 max on overflow).
  uint64_t SpaceAtDepth = 0;
  /// Instances selected after uniformity/random/cap.
  uint64_t Planned = 0;
  /// Instances executed (plan order; stops at the first failure).
  uint64_t Run = 0;
  /// Uniformity accounting: product of per-variable cell counts (0 when
  /// the hypothesis is off).
  uint64_t UniformityCells = 0;
  bool UsedObservers = false;
  uint64_t ObserverContexts = 0;
  std::optional<TestGenFailure> Failure;
};

/// A named reason the campaign could not run (unbound operations, an
/// undecidable sort) — reported instead of crashing.
struct TestGenObstruction {
  std::string Name;
  std::string Detail;
};

/// Outcome of a whole campaign over one spec.
struct TestGenReport {
  std::string SpecName;
  /// Human-readable implementation name (filled by the caller; the
  /// registry rows carry one).
  std::string Impl;
  bool AllPassed = true; ///< False on any failure or obstruction.
  std::vector<TestGenObstruction> Obstructions;
  std::vector<AxiomCampaign> Axioms;
  std::vector<std::string> Caveats;

  // Campaign totals. Deterministic counts only — no engine counters, no
  // job counts — so reports diff byte-identically across build types,
  // sanitizers, and --jobs values.
  uint64_t TotalPlanned = 0;
  uint64_t TotalRun = 0;
  uint64_t TotalFailures = 0;
  uint64_t TotalShrinkSteps = 0;
  uint64_t TotalObserverContexts = 0;
  uint64_t TotalUniformityCells = 0;

  std::string render(const TestGenOptions &Options) const;
  void writeJson(JsonWriter &W, const TestGenOptions &Options) const;
};

/// Runs the campaign for \p S against \p Binding. \p AllSpecs is the
/// whole loaded workspace — observer contexts may observe through any
/// spec's operations, and parallel workers replicate the full set.
TestGenReport runTestGen(AlgebraContext &Ctx, const Spec &S,
                         std::span<const Spec *const> AllSpecs,
                         ModelBinding &Binding,
                         const TestGenOptions &Options = TestGenOptions());

} // namespace algspec

#endif // ALGSPEC_TESTGEN_TESTGEN_H
