//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/TestGen.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "model/ModelBinding.h"
#include "parser/Replicator.h"
#include "rewrite/Engine.h"
#include "rewrite/Substitution.h"
#include "support/Json.h"
#include "testgen/Shrink.h"

#include <limits>
#include <random>
#include <unordered_map>
#include <unordered_set>

using namespace algspec;

namespace {

/// Collects the free variables of \p Term in first-occurrence order.
void collectVars(const AlgebraContext &Ctx, TermId Term,
                 std::vector<VarId> &Vars, std::unordered_set<VarId> &Seen) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    if (Seen.insert(Node.Var).second)
      Vars.push_back(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Vars, Seen);
}

uint64_t clampedMul(uint64_t A, uint64_t B) {
  if (A != 0 && B > std::numeric_limits<uint64_t>::max() / A)
    return std::numeric_limits<uint64_t>::max();
  return A * B;
}

/// Uniformity cells: indices into \p Choices, one representative per
/// top-constructor case (per distinct literal for Atom/Int sorts), in
/// first-occurrence order. The representative is the cell's *last* term
/// in enumeration order — the deepest one, which exercises the most
/// implementation state for the single instance the hypothesis allows.
std::vector<uint32_t> uniformityRepresentatives(const AlgebraContext &Ctx,
                                                const std::vector<TermId> &
                                                    Choices) {
  std::vector<uint64_t> CellKeys;
  std::vector<uint32_t> Reps;
  for (uint32_t I = 0; I != Choices.size(); ++I) {
    const TermNode &Node = Ctx.node(Choices[I]);
    uint64_t Key = 0;
    switch (Node.Kind) {
    case TermKind::Op:
      Key = (uint64_t(1) << 32) | Node.Op.index();
      break;
    case TermKind::Atom:
      Key = (uint64_t(2) << 32) | Node.AtomName.index();
      break;
    case TermKind::Int:
      Key = (uint64_t(3) << 32) |
            static_cast<uint32_t>(Ctx.intValue(Choices[I]));
      break;
    default:
      Key = uint64_t(4) << 32;
      break;
    }
    bool Found = false;
    for (size_t C = 0; C != CellKeys.size(); ++C) {
      if (CellKeys[C] == Key) {
        Reps[C] = I; // Last term of the cell wins.
        Found = true;
        break;
      }
    }
    if (!Found) {
      CellKeys.push_back(Key);
      Reps.push_back(I);
    }
  }
  return Reps;
}

/// Per-worker state for the parallel instance sweep.
struct TestGenWorker {
  std::unique_ptr<Replica> Rep;
  std::unique_ptr<ModelBinding> Binding; ///< Null when replication failed.
};

std::string describeHypotheses(const TestGenOptions &Options) {
  std::string Out = "regularity depth " + std::to_string(Options.MaxDepth);
  if (Options.RandomCount)
    Out += "; random n=" + std::to_string(Options.RandomCount) +
           " seed=" + std::to_string(Options.Seed);
  else if (Options.Uniformity)
    Out += "; uniformity";
  else
    Out += "; enumerative";
  if (Options.ForceObservers)
    Out += "; observer oracles";
  return Out;
}

} // namespace

TestGenReport algspec::runTestGen(AlgebraContext &Ctx, const Spec &S,
                                  std::span<const Spec *const> AllSpecs,
                                  ModelBinding &Binding,
                                  const TestGenOptions &Options) {
  TestGenReport Report;
  Report.SpecName = S.name();

  // Satellite of the section-5 discipline: a binding that cannot run
  // the spec is a named obstruction, not a crash or a spray of
  // per-instance evaluation failures.
  for (OpId Op : Binding.unboundOps(S)) {
    Report.AllPassed = false;
    Report.Obstructions.push_back(
        {"unbound-operation", "operation '" + std::string(Ctx.opName(Op)) +
                                  "' has no binding and no builtin "
                                  "default"});
  }
  if (!Report.Obstructions.empty())
    return Report;

  TermEnumerator Enumerator(Ctx, Options.Enum);
  std::vector<const Spec *> SpecVec(AllSpecs.begin(), AllSpecs.end());

  std::unique_ptr<ParallelDriver<TestGenWorker>> Driver;
  if (resolveJobs(Options.Par) > 1 && Options.BindingFactory &&
      Replica::create(Ctx, SpecVec)) {
    Driver = std::make_unique<ParallelDriver<TestGenWorker>>(
        Options.Par, [&Ctx, &SpecVec, &Options] {
          auto W = std::make_unique<TestGenWorker>();
          Result<std::unique_ptr<Replica>> Rep =
              Replica::create(Ctx, SpecVec);
          if (!Rep)
            return W;
          W->Rep = Rep.take();
          W->Binding =
              Options.BindingFactory(W->Rep->context(), W->Rep->specs());
          return W;
        });
  }

  // Oracles are per sort; axioms of the same sort share one.
  std::unordered_map<SortId, Oracle> Oracles;
  auto oracleFor = [&](SortId Sort) -> const Oracle & {
    auto It = Oracles.find(Sort);
    if (It == Oracles.end())
      It = Oracles
               .emplace(Sort, Oracle::build(Ctx, AllSpecs, Sort, Binding,
                                            Enumerator,
                                            Options.ForceObservers,
                                            Options.Oracles))
               .first;
    return It->second;
  };

  for (const Axiom &Ax : S.axioms()) {
    AxiomCampaign Campaign;
    Campaign.AxiomNumber = Ax.Number;
    SortId AxiomSort = Ctx.sortOf(Ax.Lhs);

    const Oracle &Judge = oracleFor(AxiomSort);
    Campaign.UsedObservers = Judge.usesObservers();
    Campaign.ObserverContexts = Judge.observerCount();
    Report.TotalObserverContexts += Judge.observerCount();
    if (!Judge.decidable()) {
      Report.AllPassed = false;
      Report.Obstructions.push_back(
          {"undecidable-sort",
           "axiom " + std::to_string(Ax.Number) + ": sort '" +
               std::string(Ctx.sortName(AxiomSort)) +
               "' has no bound equality and no observer contexts"});
      Campaign.Skipped = true;
      Report.Axioms.push_back(std::move(Campaign));
      continue;
    }

    std::vector<VarId> Vars;
    std::unordered_set<VarId> Seen;
    collectVars(Ctx, Ax.Lhs, Vars, Seen);
    collectVars(Ctx, Ax.Rhs, Vars, Seen);
    size_t NumVars = Vars.size();

    std::vector<const std::vector<TermId> *> Choices;
    bool Empty = false;
    for (VarId Var : Vars) {
      const std::vector<TermId> &Set =
          Enumerator.enumerate(Ctx.var(Var).Sort, Options.MaxDepth);
      if (Enumerator.wasTruncated(Ctx.var(Var).Sort, Options.MaxDepth))
        Report.Caveats.push_back(
            "enumeration of sort '" +
            std::string(Ctx.sortName(Ctx.var(Var).Sort)) +
            "' was truncated");
      if (Set.empty())
        Empty = true;
      Choices.push_back(&Set);
    }
    if (Empty) {
      Report.Caveats.push_back("axiom " + std::to_string(Ax.Number) +
                               " quantifies over an uninhabited sort; "
                               "skipped");
      Campaign.Skipped = true;
      Report.Axioms.push_back(std::move(Campaign));
      continue;
    }

    // Regularity accounting: the whole depth-bounded ground space this
    // campaign's selection stands in for.
    uint64_t Space = 1;
    for (const std::vector<TermId> *Set : Choices)
      Space = clampedMul(Space, Set->size());
    Campaign.SpaceAtDepth = Space;

    // The instance plan, generated serially up front: per instance, one
    // index into each variable's choice list. Workers and the serial
    // sweep both follow this plan in order, which is what makes the
    // report byte-identical at any job count.
    std::vector<uint32_t> Plan;
    if (Options.RandomCount) {
      size_t Count =
          std::min(Options.RandomCount, Options.MaxInstancesPerAxiom);
      Plan.reserve(Count * NumVars);
      std::mt19937_64 Rng(Options.Seed +
                          0x9E3779B97F4A7C15ULL * (Ax.Number + 1));
      for (size_t I = 0; I != Count; ++I)
        for (size_t V = 0; V != NumVars; ++V)
          Plan.push_back(
              static_cast<uint32_t>(Rng() % Choices[V]->size()));
    } else if (Options.Uniformity) {
      std::vector<std::vector<uint32_t>> Reps;
      uint64_t Cells = 1;
      for (size_t V = 0; V != NumVars; ++V) {
        Reps.push_back(uniformityRepresentatives(Ctx, *Choices[V]));
        Cells = clampedMul(Cells, Reps.back().size());
      }
      Campaign.UniformityCells = Cells;
      Report.TotalUniformityCells += Cells;
      uint64_t Capped =
          std::min<uint64_t>(Cells, Options.MaxInstancesPerAxiom);
      for (uint64_t Flat = 0; Flat != Capped; ++Flat) {
        uint64_t Rem = Flat;
        for (size_t V = 0; V != NumVars; ++V) {
          Plan.push_back(Reps[V][Rem % Reps[V].size()]);
          Rem /= Reps[V].size();
        }
      }
    } else {
      uint64_t Capped =
          std::min<uint64_t>(Space, Options.MaxInstancesPerAxiom);
      for (uint64_t Flat = 0; Flat != Capped; ++Flat) {
        uint64_t Rem = Flat;
        for (size_t V = 0; V != NumVars; ++V) {
          Plan.push_back(
              static_cast<uint32_t>(Rem % Choices[V]->size()));
          Rem /= Choices[V]->size();
        }
      }
    }
    size_t Planned = NumVars ? Plan.size() / NumVars : Plan.size();
    if (NumVars == 0) {
      // A ground axiom has exactly one instance.
      Planned = 1;
    }
    Campaign.Planned = Planned;
    Report.TotalPlanned += Planned;
    if (!Options.RandomCount && !Options.Uniformity &&
        Planned >= Options.MaxInstancesPerAxiom)
      Report.Caveats.push_back("axiom " + std::to_string(Ax.Number) +
                               ": instance cap reached");

    auto assignmentOf = [&](size_t I) {
      std::vector<TermId> Assignment(NumVars);
      for (size_t V = 0; V != NumVars; ++V)
        Assignment[V] = (*Choices[V])[Plan[I * NumVars + V]];
      return Assignment;
    };
    auto instantiate = [&](std::span<const TermId> Assignment) {
      Substitution Sigma;
      for (size_t V = 0; V != NumVars; ++V)
        Sigma.bind(Vars[V], Assignment[V]);
      return std::pair<TermId, TermId>(
          applySubstitution(Ctx, Ax.Lhs, Sigma),
          applySubstitution(Ctx, Ax.Rhs, Sigma));
    };

    // Judges instance \p I on the caller's binding; on a failure fills
    // Campaign.Failure (shrinking first) and returns true.
    auto evalOnMain = [&](size_t I) -> bool {
      std::vector<TermId> Assignment = assignmentOf(I);
      auto [Lhs, Rhs] = instantiate(Assignment);
      Result<OracleVerdict> Verdict = Judge.compare(Binding, Lhs, Rhs);

      TestGenFailure Failure;
      if (Verdict && Verdict->Equal)
        return false;
      if (!Verdict) {
        Failure.ImplAnswer =
            "evaluation failed: " + Verdict.error().message();
      } else {
        // Greedy descent to a locally minimal failing assignment.
        ShrinkOutcome Shrunk = shrinkAssignment(
            Ctx, Enumerator, Options.MaxDepth, Vars, std::move(Assignment),
            [&](std::span<const TermId> Trial) {
              auto [L, R] = instantiate(Trial);
              Result<OracleVerdict> V = Judge.compare(Binding, L, R);
              return V && !V->Equal;
            });
        Assignment = std::move(Shrunk.Assignment);
        Failure.ShrinkSteps = Shrunk.Steps;
        Report.TotalShrinkSteps += Shrunk.Steps;
        std::tie(Lhs, Rhs) = instantiate(Assignment);
        Result<OracleVerdict> Final = Judge.compare(Binding, Lhs, Rhs);
        Failure.ImplAnswer = Final && !Final->Equal
                                 ? Final->Detail
                                 : Verdict->Detail;
      }
      for (size_t V = 0; V != NumVars; ++V) {
        if (V)
          Failure.Assignment += ", ";
        Failure.Assignment += std::string(Ctx.varName(Vars[V])) + " := " +
                              printTerm(Ctx, Assignment[V]);
      }
      Failure.Lhs = printTerm(Ctx, Lhs);
      Failure.Rhs = printTerm(Ctx, Rhs);
      if (Options.SpecEngine) {
        if (Result<TermId> Nf = Options.SpecEngine->normalize(Lhs))
          Failure.SpecNormalForm = printTerm(Ctx, *Nf);
      }
      Campaign.Passed = false;
      Campaign.Failure = std::move(Failure);
      return true;
    };

    if (Driver && NumVars && Planned <= Options.Par.MaxFlatSpace) {
      // Workers classify their shard of the plan; the merge walks
      // flagged instances in ascending plan order and re-judges them on
      // the caller's binding, regenerating the exact serial failure and
      // stop point. Re-checking also tolerates a worker whose
      // replication failed (it flags its whole shard).
      std::vector<uint8_t> Flagged = Driver->map<uint8_t>(
          Planned, [&](TestGenWorker &W, size_t I) -> uint8_t {
            if (!W.Binding)
              return 1;
            AlgebraContext &RCtx = W.Rep->context();
            Substitution Sigma;
            for (size_t V = 0; V != NumVars; ++V) {
              TermId Mapped = W.Rep->mapTerm(
                  (*Choices[V])[Plan[I * NumVars + V]]);
              if (!Mapped.isValid())
                return 1;
              Sigma.bind(W.Rep->mapVar(Vars[V]), Mapped);
            }
            TermId MappedLhs = W.Rep->mapTerm(Ax.Lhs);
            TermId MappedRhs = W.Rep->mapTerm(Ax.Rhs);
            if (!MappedLhs.isValid() || !MappedRhs.isValid())
              return 1;
            TermId Lhs = applySubstitution(RCtx, MappedLhs, Sigma);
            TermId Rhs = applySubstitution(RCtx, MappedRhs, Sigma);

            Result<Value> LV = W.Binding->evaluate(Lhs);
            if (!LV)
              return 1;
            Result<Value> RV = W.Binding->evaluate(Rhs);
            if (!RV)
              return 1;
            if (LV->isError() || RV->isError())
              return LV->isError() == RV->isError() ? 0 : 1;

            if (!Judge.usesObservers()) {
              auto Eq = W.Binding->equal(W.Rep->mapSort(AxiomSort), *LV,
                                         *RV);
              return (!Eq || !*Eq) ? 1 : 0;
            }
            for (const ObserverContext &C : Judge.observers()) {
              TermId MappedCtx = W.Rep->mapTerm(C.Context);
              if (!MappedCtx.isValid())
                return 1;
              VarId MappedHole = W.Rep->mapVar(C.Hole);
              Substitution HL, HR;
              HL.bind(MappedHole, Lhs);
              HR.bind(MappedHole, Rhs);
              Result<Value> OL = W.Binding->evaluate(
                  applySubstitution(RCtx, MappedCtx, HL));
              if (!OL)
                return 1;
              Result<Value> OR = W.Binding->evaluate(
                  applySubstitution(RCtx, MappedCtx, HR));
              if (!OR)
                return 1;
              if (OL->isError() != OR->isError())
                return 1;
              if (OL->isError())
                continue;
              auto Eq = W.Binding->equal(W.Rep->mapSort(C.ResultSort), *OL,
                                         *OR);
              if (!Eq || !*Eq)
                return 1;
            }
            return 0;
          });
      Campaign.Run = Planned;
      for (size_t I = 0; I != Planned; ++I) {
        if (!Flagged[I])
          continue;
        if (evalOnMain(I)) {
          Campaign.Run = I + 1;
          break;
        }
      }
    } else {
      while (Campaign.Run < Planned) {
        size_t I = Campaign.Run++;
        if (evalOnMain(I))
          break;
      }
    }

    Report.TotalRun += Campaign.Run;
    if (!Campaign.Passed)
      ++Report.TotalFailures;
    Report.AllPassed &= Campaign.Passed;
    Report.Axioms.push_back(std::move(Campaign));
  }
  return Report;
}

std::string TestGenReport::render(const TestGenOptions &Options) const {
  std::string Out = "testgen spec " + SpecName;
  if (!Impl.empty())
    Out += " vs " + Impl;
  Out += "\n  hypotheses: " + describeHypotheses(Options) + "\n";
  for (const TestGenObstruction &O : Obstructions)
    Out += "  obstruction " + O.Name + ": " + O.Detail + "\n";
  for (const AxiomCampaign &A : Axioms) {
    Out += "  axiom " + std::to_string(A.AxiomNumber) + ": ";
    if (A.Skipped) {
      Out += "skipped\n";
      continue;
    }
    if (A.Passed) {
      Out += "passed (" + std::to_string(A.Run) + " instances; space " +
             std::to_string(A.SpaceAtDepth);
      if (A.UniformityCells)
        Out += "; " + std::to_string(A.UniformityCells) + " cells";
      if (A.UsedObservers)
        Out += "; " + std::to_string(A.ObserverContexts) + " observers";
      Out += ")\n";
      continue;
    }
    Out += "FAILED (instance " + std::to_string(A.Run) + " of " +
           std::to_string(A.Planned) + ")\n";
    if (A.Failure) {
      Out += "    counterexample (shrunk, " +
             std::to_string(A.Failure->ShrinkSteps) + " steps): " +
             (A.Failure->Assignment.empty() ? "<ground>"
                                            : A.Failure->Assignment) +
             "\n";
      Out += "    lhs: " + A.Failure->Lhs + "\n";
      Out += "    rhs: " + A.Failure->Rhs + "\n";
      if (!A.Failure->SpecNormalForm.empty())
        Out += "    spec normal form: " + A.Failure->SpecNormalForm + "\n";
      Out += "    implementation: " + A.Failure->ImplAnswer + "\n";
    }
  }
  for (const std::string &Caveat : Caveats)
    Out += "  note: " + Caveat + "\n";
  Out += "result: ";
  if (!Obstructions.empty())
    Out += "OBSTRUCTED — " + std::to_string(Obstructions.size()) +
           " obstruction(s)\n";
  else if (AllPassed)
    Out += "passed — " + std::to_string(Axioms.size()) + " axiom(s), " +
           std::to_string(TotalRun) + " instance(s)\n";
  else
    Out += "FAILED — " + std::to_string(TotalFailures) +
           " counterexample(s), " + std::to_string(TotalRun) +
           " instance(s) run\n";
  return Out;
}

void TestGenReport::writeJson(JsonWriter &W,
                              const TestGenOptions &Options) const {
  W.beginObject();
  W.key("spec").value(SpecName);
  W.key("impl").value(Impl);
  W.key("allPassed").value(AllPassed);
  W.key("hypotheses").beginObject();
  W.key("maxDepth").value(Options.MaxDepth);
  W.key("mode").value(Options.RandomCount ? "random"
                      : Options.Uniformity ? "uniformity"
                                           : "enumerative");
  W.key("randomCount").value(static_cast<uint64_t>(Options.RandomCount));
  W.key("seed").value(Options.Seed);
  W.key("oracle").value(Options.ForceObservers ? "observers" : "auto");
  W.endObject();
  W.key("obstructions").beginArray();
  for (const TestGenObstruction &O : Obstructions) {
    W.beginObject();
    W.key("name").value(O.Name);
    W.key("detail").value(O.Detail);
    W.endObject();
  }
  W.endArray();
  W.key("axioms").beginArray();
  for (const AxiomCampaign &A : Axioms) {
    W.beginObject();
    W.key("axiom").value(A.AxiomNumber);
    W.key("passed").value(A.Passed);
    W.key("skipped").value(A.Skipped);
    W.key("space").value(A.SpaceAtDepth);
    W.key("planned").value(A.Planned);
    W.key("run").value(A.Run);
    W.key("uniformityCells").value(A.UniformityCells);
    W.key("observerContexts").value(A.ObserverContexts);
    if (A.Failure) {
      W.key("counterexample").beginObject();
      W.key("assignment").value(A.Failure->Assignment);
      W.key("lhs").value(A.Failure->Lhs);
      W.key("rhs").value(A.Failure->Rhs);
      W.key("specNormalForm").value(A.Failure->SpecNormalForm);
      W.key("implementation").value(A.Failure->ImplAnswer);
      W.key("shrinkSteps").value(A.Failure->ShrinkSteps);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.key("caveats").beginArray();
  for (const std::string &Caveat : Caveats)
    W.value(Caveat);
  W.endArray();
  W.key("campaign").beginObject();
  W.key("planned").value(TotalPlanned);
  W.key("run").value(TotalRun);
  W.key("failures").value(TotalFailures);
  W.key("shrinkSteps").value(TotalShrinkSteps);
  W.key("observerContexts").value(TotalObserverContexts);
  W.key("uniformityCells").value(TotalUniformityCells);
  W.endObject();
  W.endObject();
}
