//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E20 — axiom-derived test campaigns (testgen). The headline
/// A/B is the uniformity hypothesis: `BM_TestgenUniform/<depth>` (one
/// representative per variable/constructor-case cell) against
/// `BM_TestgenFull/<depth>` (the whole depth-bounded instance space) on
/// the same Queue campaign. The cell count is fixed by the signature
/// while the full space grows exponentially with depth, so uniformity
/// must win and the gap must widen. The micro-series isolate the
/// campaign's moving parts: enumerative vs seeded-random plan
/// generation, direct-equality vs observer-context oracle throughput,
/// and the greedy shrink descent from a deep failing instance.
///
//===----------------------------------------------------------------------===//

#include "adt/Bindings.h"
#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "check/TermEnumerator.h"
#include "model/ModelBinding.h"
#include "specs/BuiltinSpecs.h"
#include "testgen/Oracle.h"
#include "testgen/Shrink.h"
#include "testgen/TestGen.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;

namespace {

/// The Queue spec bound to the registry's adt::Queue<std::string>
/// implementation (optionally a registered mutant of it).
struct QueueFixture {
  explicit QueueFixture(std::string_view Mutant = "")
      : Queue(specs::loadQueue(Ctx).take()), Binding(Ctx) {
    const adt::AdtBinding *Row = adt::findAdtBinding("Queue");
    if (!Row || !Row->Install(Binding, Queue, Mutant))
      std::abort();
    Specs.push_back(&Queue);
  }

  AlgebraContext Ctx;
  Spec Queue;
  ModelBinding Binding;
  std::vector<const Spec *> Specs;
};

void runCampaign(benchmark::State &State, const TestGenOptions &Options,
                 std::string_view Mutant = "") {
  QueueFixture F(Mutant);
  uint64_t Run = 0;
  for (auto _ : State) {
    TestGenReport Report =
        runTestGen(F.Ctx, F.Queue, F.Specs, F.Binding, Options);
    benchmark::DoNotOptimize(Report.AllPassed);
    Run = Report.TotalRun;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations() * Run));
  State.counters["instances"] = static_cast<double>(Run);
}

/// The full depth-bounded instance space, enumerated (regularity only).
void BM_TestgenFull(benchmark::State &State) {
  TestGenOptions Options;
  Options.MaxDepth = static_cast<unsigned>(State.range(0));
  runCampaign(State, Options);
}
BENCHMARK(BM_TestgenFull)->DenseRange(3, 5);

/// Same campaign under the uniformity hypothesis: one representative
/// per variable/constructor-case cell.
void BM_TestgenUniform(benchmark::State &State) {
  TestGenOptions Options;
  Options.MaxDepth = static_cast<unsigned>(State.range(0));
  Options.Uniformity = true;
  runCampaign(State, Options);
}
BENCHMARK(BM_TestgenUniform)->DenseRange(3, 5);

/// Seeded-random sampling of the depth-5 space (plan generation plus
/// execution for a fixed instance budget).
void BM_TestgenRandom(benchmark::State &State) {
  TestGenOptions Options;
  Options.MaxDepth = 5;
  Options.RandomCount = static_cast<size_t>(State.range(0));
  Options.Seed = 42;
  runCampaign(State, Options);
}
BENCHMARK(BM_TestgenRandom)->Arg(10)->Arg(100);

/// A failing campaign end to end: catch the LIFO mutant, shrink the
/// counterexample, render the report.
void BM_TestgenMutantCaught(benchmark::State &State) {
  TestGenOptions Options;
  Options.MaxDepth = 4;
  runCampaign(State, Options, "remove-lifo");
}
BENCHMARK(BM_TestgenMutantCaught);

void runOracle(benchmark::State &State, bool ForceObservers) {
  QueueFixture F;
  TermEnumerator Enum(F.Ctx);
  SortId QueueSort = F.Ctx.lookupSort("Queue");
  const std::vector<TermId> &Queues = Enum.enumerate(QueueSort, 4);
  Oracle Judge = Oracle::build(F.Ctx, F.Specs, QueueSort, F.Binding, Enum,
                               ForceObservers, OracleOptions());
  uint64_t Compared = 0;
  for (auto _ : State) {
    for (size_t I = 1; I < Queues.size(); ++I) {
      Result<OracleVerdict> V =
          Judge.compare(F.Binding, Queues[I - 1], Queues[I]);
      benchmark::DoNotOptimize(V);
      ++Compared;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Compared));
  State.counters["observers"] = static_cast<double>(Judge.observerCount());
}

/// Direct-equality oracle throughput over adjacent depth-4 queue pairs.
void BM_OracleDirect(benchmark::State &State) { runOracle(State, false); }
BENCHMARK(BM_OracleDirect);

/// The same comparisons decided by observer contexts only.
void BM_OracleObserver(benchmark::State &State) { runOracle(State, true); }
BENCHMARK(BM_OracleObserver);

/// Greedy shrink descent from the deepest failing instance of Queue
/// axiom 6 under the LIFO mutant.
void BM_ShrinkMutant(benchmark::State &State) {
  QueueFixture F("remove-lifo");
  TermEnumerator Enum(F.Ctx);
  SortId QueueSort = F.Ctx.lookupSort("Queue");
  SortId ItemSort = F.Ctx.lookupSort("Item");
  const unsigned Depth = 5;
  const std::vector<TermId> &Queues = Enum.enumerate(QueueSort, Depth);
  const std::vector<TermId> &Items = Enum.enumerate(ItemSort, Depth);
  OpId Remove = F.Ctx.lookupOp("REMOVE");
  OpId Add = F.Ctx.lookupOp("ADD");
  Oracle Judge = Oracle::build(F.Ctx, F.Specs, QueueSort, F.Binding, Enum,
                               /*ForceObservers=*/false, OracleOptions());
  VarId Vars[] = {F.Ctx.addVar("q_bench", QueueSort),
                  F.Ctx.addVar("i_bench", ItemSort)};
  auto StillFails = [&](std::span<const TermId> Assignment) {
    TermId L = F.Ctx.makeOp(
        Remove, {F.Ctx.makeOp(Add, {Assignment[0], Assignment[1]})});
    TermId R = F.Ctx.makeOp(Add, {F.Ctx.makeOp(Remove, {Assignment[0]}),
                                  Assignment[1]});
    Result<OracleVerdict> V = Judge.compare(F.Binding, L, R);
    return V && !V->Equal;
  };
  uint64_t Steps = 0;
  for (auto _ : State) {
    ShrinkOutcome Out =
        shrinkAssignment(F.Ctx, Enum, Depth, Vars,
                         {Queues.back(), Items.front()}, StillFails);
    benchmark::DoNotOptimize(Out.Assignment);
    Steps = Out.Steps;
  }
  State.counters["shrink_steps"] = static_cast<double>(Steps);
}
BENCHMARK(BM_ShrinkMutant);

} // namespace

ALGSPEC_BENCHMARK_MAIN()
