//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E8 (end-to-end view): whole-compiler-front-end throughput
/// over synthetic BlockLang programs, for each symbol-table backend.
/// Where bench_symbolic_vs_concrete replays a raw operation trace, this
/// one runs the real pipeline (lex, parse, scope/type check), so the
/// numbers show what the representation choice costs a *user* of the
/// compiler — and what running on the bare specification costs.
///
//===----------------------------------------------------------------------===//

#include "adt/FlatSymbolTable.h"
#include "adt/ListSymbolTable.h"
#include "adt/SymbolTable.h"
#include "blocklang/ScopedTable.h"
#include "blocklang/Sema.h"
#include "support/SourceMgr.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <random>
#include <string>

using namespace algspec;
using namespace algspec::blocklang;

namespace {

/// Generates a well-formed program with \p NumBlocks nested/sequential
/// blocks of \p VarsPerBlock declarations each, plus assignments that
/// exercise lookups across scopes.
std::string makeProgram(unsigned NumBlocks, unsigned VarsPerBlock,
                        uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int> Coin(0, 1);
  std::string Out = "begin\n";
  unsigned Depth = 1;
  unsigned Counter = 0;
  std::vector<std::vector<std::string>> Declared(1);

  auto declare = [&](std::string &Text) {
    std::string Name = "v" + std::to_string(Counter++);
    Text += std::string(Depth * 2, ' ') + "var " + Name + " : int;\n";
    Declared.back().push_back(Name);
  };
  auto assign = [&](std::string &Text) {
    // Assign to a random visible variable from a random visible one.
    std::uniform_int_distribution<size_t> PickScope(0, Declared.size() - 1);
    size_t S1 = PickScope(Rng), S2 = PickScope(Rng);
    if (Declared[S1].empty() || Declared[S2].empty())
      return;
    std::uniform_int_distribution<size_t> P1(0, Declared[S1].size() - 1);
    std::uniform_int_distribution<size_t> P2(0, Declared[S2].size() - 1);
    Text += std::string(Depth * 2, ' ') + Declared[S1][P1(Rng)] + " := " +
            Declared[S2][P2(Rng)] + " + 1;\n";
  };

  for (unsigned V = 0; V < VarsPerBlock; ++V)
    declare(Out);
  for (unsigned B = 1; B < NumBlocks; ++B) {
    Out += std::string(Depth * 2, ' ') + "begin\n";
    ++Depth;
    Declared.emplace_back();
    for (unsigned V = 0; V < VarsPerBlock; ++V)
      declare(Out);
    for (unsigned A = 0; A < VarsPerBlock * 2; ++A)
      assign(Out);
    if (Coin(Rng) && Depth > 2) {
      --Depth;
      Declared.pop_back();
      Out += std::string(Depth * 2, ' ') + "end;\n";
    }
  }
  while (Depth > 1) {
    --Depth;
    Declared.pop_back();
    Out += std::string(Depth * 2, ' ') + "end;\n";
  }
  Out += "end\n";
  return Out;
}

template <typename MakeBackend>
void runCompile(benchmark::State &State, MakeBackend Make) {
  std::string Source =
      makeProgram(static_cast<unsigned>(State.range(0)), 6, 42);
  SourceMgr SM("bench.bl", Source);
  for (auto _ : State) {
    auto Backend = Make();
    DiagnosticEngine Diags;
    SemaStats Stats;
    bool Ok = compile(SM, *Backend, Diags, Dialect::Plain, &Stats);
    if (!Ok)
      State.SkipWithError("synthetic program failed to compile");
    benchmark::DoNotOptimize(Stats.Lookups);
  }
}

void BM_CompileHashStack(benchmark::State &State) {
  runCompile(State, [] {
    return std::make_unique<
        ConcreteScopedTable<adt::SymbolTable<Type>>>();
  });
}
void BM_CompileAssocList(benchmark::State &State) {
  runCompile(State, [] {
    return std::make_unique<
        ConcreteScopedTable<adt::ListSymbolTable<Type>>>();
  });
}
void BM_CompileFlatUndo(benchmark::State &State) {
  runCompile(State, [] {
    return std::make_unique<
        ConcreteScopedTable<adt::FlatSymbolTable<Type>>>();
  });
}
void BM_CompileSpecBackend(benchmark::State &State) {
  runCompile(State, [] {
    auto Created = SpecScopedTable::create();
    return Created ? std::move(*Created)
                   : std::unique_ptr<SpecScopedTable>();
  });
}

} // namespace

BENCHMARK(BM_CompileHashStack)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_CompileAssocList)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_CompileFlatUndo)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_CompileSpecBackend)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
