//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Benchmarks for the error-flow analysis (`algspec analyze`): the
/// per-operation definedness fixpoint and condition extraction over the
/// paper specs, a synthetic sweep scaling the number of operations and
/// the call-chain depth the fixpoint must propagate through, and the
/// verifier's obligation-discharge pass on the paper's Symboltable
/// representation. Like the checkers, the analysis backs an interactive
/// command, so it has to answer at interactive speed.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "check/ErrorFlow.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace algspec;

namespace {

/// A spec with a chain of \p ChainLen operations, each forwarding to the
/// next, the last one erroring on the nullary constructor: the fixpoint
/// needs ChainLen rounds to propagate the verdict back to the head, and
/// condition extraction composes through every link.
std::string chainSpec(int64_t ChainLen) {
  std::string S = "spec Chain\n  sorts T\n  ops\n    Z : -> T\n"
                  "    S : T -> T\n";
  for (int64_t F = 0; F < ChainLen; ++F)
    S += "    F" + std::to_string(F) + " : T -> T\n";
  S += "  constructors Z, S\n  vars x : T\n  axioms\n";
  for (int64_t F = 0; F + 1 < ChainLen; ++F) {
    S += "    F" + std::to_string(F) + "(Z) = F" + std::to_string(F + 1) +
         "(Z)\n";
    S += "    F" + std::to_string(F) + "(S(x)) = F" + std::to_string(F + 1) +
         "(x)\n";
  }
  S += "    F" + std::to_string(ChainLen - 1) + "(Z) = error\n";
  S += "    F" + std::to_string(ChainLen - 1) + "(S(x)) = x\n";
  S += "end\n";
  return S;
}

void BM_ErrorFlowPaperSpecs(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  Spec Sym = specs::loadSymboltable(Ctx).take();
  std::vector<Spec> SA = specs::loadStackArray(Ctx).take();
  std::vector<const Spec *> All{&Q, &Sym};
  for (const Spec &S : SA)
    All.push_back(&S);
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeErrorFlow(Ctx, All));
}

void BM_ErrorFlowBoundedQueue(benchmark::State &State) {
  // The deepest shipped condition extraction: ENQUEUE's guard composes
  // through IS_FULL?, CAPACITY, and BSIZE.
  AlgebraContext Ctx;
  std::vector<Spec> Loaded =
      specs::load(Ctx, specs::BoundedQueueAlg, "boundedqueue.alg").take();
  std::vector<const Spec *> All;
  for (const Spec &S : Loaded)
    All.push_back(&S);
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeErrorFlow(Ctx, All));
}

void BM_ErrorFlowChain(benchmark::State &State) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, chainSpec(State.range(0)));
  Spec S = std::move(Parsed->front());
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeErrorFlow(Ctx, {&S}));
}

void BM_ObligationDischarge(benchmark::State &State) {
  // verifyRepresentation at depth 1: the sweep itself is tiny, so the
  // timing is dominated by the obligation-discharge pass (error-flow
  // analysis + per-site unification, guard refutation, and per-head
  // probes over the Symboltable implementation).
  AlgebraContext Ctx;
  Spec Sym = specs::loadSymboltable(Ctx).take();
  std::vector<Spec> SA = specs::loadStackArray(Ctx).take();
  SymboltableRep Rep = buildSymboltableRep(Ctx).take();
  std::vector<const Spec *> Sources{&Sym};
  for (const Spec &S : SA)
    Sources.push_back(&S);
  for (const Spec &S : Rep.ImplSpecs)
    Sources.push_back(&S);
  VerifyOptions Options;
  Options.Domain = State.range(0) == 0 ? ValueDomain::Reachable
                                       : ValueDomain::FreeTerms;
  Options.Depth = 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        verifyRepresentation(Ctx, Sym, Sources, Rep.Mapping, Options));
}

} // namespace

BENCHMARK(BM_ErrorFlowPaperSpecs);
BENCHMARK(BM_ErrorFlowBoundedQueue);
BENCHMARK(BM_ErrorFlowChain)->Arg(4)->Arg(16)->Arg(64);
// 0 = Reachable, 1 = FreeTerms (the domain decides which heads the
// per-head analysis must refute).
BENCHMARK(BM_ObligationDischarge)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
