//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared benchmark entry point. Every bench binary uses
/// ALGSPEC_BENCHMARK_MAIN() instead of BENCHMARK_MAIN() so the reported
/// context carries the *project's* build type under the key
/// "algspec_build_type". The stock "library_build_type" key describes
/// how the benchmark *library* was compiled — with a distro-packaged
/// libbenchmark that key is frozen at the distro's choice and says
/// nothing about the flags this code was built with, which once let a
/// debug-build baseline masquerade as meaningful (tools/run_benches.sh
/// now refuses to record one).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BENCH_BENCHMAIN_H
#define ALGSPEC_BENCH_BENCHMAIN_H

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <string>

namespace algspec_bench {

/// The CMAKE_BUILD_TYPE the bench was compiled under (lowercased), baked
/// in by bench/CMakeLists.txt; falls back to the NDEBUG state when the
/// build type string is empty (default CMake configuration).
inline std::string buildType() {
#ifdef ALGSPEC_BENCH_BUILD_TYPE
  std::string Type = ALGSPEC_BENCH_BUILD_TYPE;
#else
  std::string Type;
#endif
  std::transform(Type.begin(), Type.end(), Type.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (!Type.empty())
    return Type;
#ifdef NDEBUG
  return "unspecified-ndebug";
#else
  return "unspecified-assertions";
#endif
}

} // namespace algspec_bench

#define ALGSPEC_BENCHMARK_MAIN()                                           \
  int main(int argc, char **argv) {                                        \
    benchmark::AddCustomContext("algspec_build_type",                      \
                                ::algspec_bench::buildType());             \
    benchmark::Initialize(&argc, argv);                                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv))                \
      return 1;                                                            \
    benchmark::RunSpecifiedBenchmarks();                                   \
    benchmark::Shutdown();                                                 \
    return 0;                                                              \
  }

#endif // ALGSPEC_BENCH_BENCHMAIN_H
