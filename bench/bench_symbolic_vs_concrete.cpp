//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E8 — paper section 5: "except for a significant loss in
/// efficiency, the lack of an implementation can be made completely
/// transparent to the user."
///
/// One symbol-table workload is replayed against (a) the concrete
/// stack-of-hash-arrays implementation, (b) the concrete association
/// list, and (c) the bare Symboltable specification interpreted
/// symbolically. The series quantifies the "significant loss": the
/// symbolic table is orders of magnitude slower and its per-operation
/// cost grows with the table's history, while concrete tables stay flat.
///
//===----------------------------------------------------------------------===//

#include "Workload.h"
#include "adt/ListSymbolTable.h"
#include "adt/SymbolTable.h"
#include "ast/AlgebraContext.h"
#include "interp/Session.h"
#include "specs/BuiltinSpecs.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;
using namespace algspec::bench;

namespace {

WorkloadParams paramsFor(int64_t NumOps) {
  WorkloadParams P;
  P.NumOps = static_cast<unsigned>(NumOps);
  P.MaxDepth = 6;
  P.IdentsPerBlock = 4;
  return P;
}

/// Replays the workload against a fresh symbolic session per iteration.
uint64_t replaySymbolic(const std::vector<SymtabOp> &Ops) {
  AlgebraContext Ctx;
  auto Loaded = specs::loadSymboltable(Ctx);
  Spec S = Loaded.take();
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  Session Sess = Session::create(Ctx, {&S}, Options).take();
  uint64_t Checksum = 0;
  (void)Sess.run("t := INIT");
  for (const SymtabOp &Op : Ops) {
    switch (Op.K) {
    case SymtabOp::Kind::Enter:
      (void)Sess.run("t := ENTERBLOCK(t)");
      break;
    case SymtabOp::Kind::Leave: {
      Result<TermId> Probe = Sess.eval("LEAVEBLOCK(t)");
      if (Probe && !Ctx.isError(*Probe)) {
        (void)Sess.assign("t", *Probe);
        ++Checksum;
      }
      break;
    }
    case SymtabOp::Kind::Add:
      (void)Sess.run("t := ADD(t, '" + Op.Id + ", 'attr)");
      break;
    case SymtabOp::Kind::Lookup: {
      Result<TermId> V = Sess.eval("RETRIEVE(t, '" + Op.Id + ")");
      Checksum += V && !Ctx.isError(*V);
      break;
    }
    case SymtabOp::Kind::IsInBlock: {
      Result<TermId> V = Sess.eval("IS_INBLOCK?(t, '" + Op.Id + ")");
      Checksum += V && *V == Ctx.trueTerm();
      break;
    }
    }
  }
  return Checksum;
}

void BM_ConcreteHash(benchmark::State &State) {
  std::vector<SymtabOp> Ops = makeWorkload(paramsFor(State.range(0)));
  for (auto _ : State) {
    adt::SymbolTable<int> T;
    benchmark::DoNotOptimize(replay(T, Ops));
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Ops.size()));
}

void BM_ConcreteList(benchmark::State &State) {
  std::vector<SymtabOp> Ops = makeWorkload(paramsFor(State.range(0)));
  for (auto _ : State) {
    adt::ListSymbolTable<int> T;
    benchmark::DoNotOptimize(replay(T, Ops));
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Ops.size()));
}

void BM_SymbolicSpec(benchmark::State &State) {
  std::vector<SymtabOp> Ops = makeWorkload(paramsFor(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(replaySymbolic(Ops));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Ops.size()));
}

} // namespace

BENCHMARK(BM_ConcreteHash)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_ConcreteList)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_SymbolicSpec)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
