//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E9 — paper section 5: "The premature choice of a storage
/// structure ... is a common cause of inefficiencies"; the designer "may
/// have poor insight into the relative frequency of the various
/// operations".
///
/// Three representations of one abstract Symboltable are swept across
/// workload shapes (nesting depth, identifiers per block, lookup share,
/// outer-lookup share). No representation dominates: the association
/// list wins tiny scopes, the stack-of-hash-arrays wins wide scopes with
/// local lookups, the flat undo-log table wins deep outer-lookup-heavy
/// workloads — so the representation-free specification that lets you
/// delay the choice has real value.
///
//===----------------------------------------------------------------------===//

#include "Workload.h"
#include "adt/FlatSymbolTable.h"
#include "adt/ListSymbolTable.h"
#include "adt/SymbolTable.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;
using namespace algspec::bench;

namespace {

/// Args: {identifiers per block, nesting depth, outer-lookup %}.
WorkloadParams paramsFromState(const benchmark::State &State) {
  WorkloadParams P;
  P.NumOps = 20000;
  P.IdentsPerBlock = static_cast<unsigned>(State.range(0));
  P.MaxDepth = static_cast<unsigned>(State.range(1));
  P.OuterLookupPercent = static_cast<unsigned>(State.range(2));
  P.LookupPercent = 75;
  return P;
}

template <typename Table> void runShape(benchmark::State &State) {
  std::vector<SymtabOp> Ops = makeWorkload(paramsFromState(State));
  for (auto _ : State) {
    Table T;
    benchmark::DoNotOptimize(replay(T, Ops));
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Ops.size()));
}

void BM_HashStack(benchmark::State &State) {
  runShape<adt::SymbolTable<int>>(State);
}
void BM_AssocList(benchmark::State &State) {
  runShape<adt::ListSymbolTable<int>>(State);
}
void BM_FlatUndo(benchmark::State &State) {
  runShape<adt::FlatSymbolTable<int>>(State);
}

void shapes(benchmark::internal::Benchmark *B) {
  // {idents/block, depth, outer%}
  B->Args({2, 3, 10});   // Tiny scopes, shallow, local.
  B->Args({2, 16, 60});  // Tiny scopes, deep, outer-heavy.
  B->Args({32, 3, 10});  // Wide scopes, shallow, local.
  B->Args({32, 16, 60}); // Wide scopes, deep, outer-heavy.
  B->Args({8, 8, 30});   // The middle.
}

} // namespace

BENCHMARK(BM_HashStack)->Apply(shapes);
BENCHMARK(BM_AssocList)->Apply(shapes);
BENCHMARK(BM_FlatUndo)->Apply(shapes);

ALGSPEC_BENCHMARK_MAIN()
