//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E11 — rewrite-engine scalability (supports E8's cost
/// analysis): normalization time vs term size for Queue observations,
/// and the ablation of the two design choices DESIGN.md calls out —
/// normal-form memoization and hash consing's O(1) equality (approximated
/// by the memoization toggle, since without the memo every equality
/// re-derives).
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

using namespace algspec;

namespace {

/// Builds ADD(...ADD(NEW, 'x0)..., 'xN).
TermId buildQueueTerm(AlgebraContext &Ctx, int64_t Length) {
  SortId Item = Ctx.lookupSort("Item");
  OpId New = Ctx.lookupOp("NEW");
  OpId Add = Ctx.lookupOp("ADD");
  TermId Term = Ctx.makeOp(New, {});
  for (int64_t I = 0; I < Length; ++I) {
    TermId Atom = Ctx.makeAtom("x" + std::to_string(I), Item);
    Term = Ctx.makeOp(Add, {Term, Atom});
  }
  return Term;
}

struct QueueFixture {
  QueueFixture() {
    Q = specs::loadQueue(Ctx).take();
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, {&Q}).take());
  }
  AlgebraContext Ctx;
  Spec Q;
  std::unique_ptr<RewriteSystem> System;
};

/// FRONT of an n-deep queue: the recursion walks the whole spine.
void BM_FrontOfDeepQueue(benchmark::State &State) {
  QueueFixture F;
  OpId Front = F.Ctx.lookupOp("FRONT");
  TermId Term =
      F.Ctx.makeOp(Front, {buildQueueTerm(F.Ctx, State.range(0))});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  Options.Memoize = State.range(1) != 0;
  for (auto _ : State) {
    RewriteEngine Engine(F.Ctx, *F.System, Options);
    benchmark::DoNotOptimize(Engine.normalize(Term));
  }
}

/// Full drain: REMOVE^n then IS_EMPTY?; quadratic in n by the axioms.
void BM_DrainQueue(benchmark::State &State) {
  QueueFixture F;
  OpId Remove = F.Ctx.lookupOp("REMOVE");
  OpId IsEmpty = F.Ctx.lookupOp("IS_EMPTY?");
  TermId Term = buildQueueTerm(F.Ctx, State.range(0));
  for (int64_t I = 0; I < State.range(0); ++I)
    Term = F.Ctx.makeOp(Remove, {Term});
  Term = F.Ctx.makeOp(IsEmpty, {Term});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  for (auto _ : State) {
    RewriteEngine Engine(F.Ctx, *F.System, Options);
    benchmark::DoNotOptimize(Engine.normalize(Term));
  }
}

/// Re-observation with a warm memo: the value of caching normal forms.
void BM_RepeatedObservationMemoized(benchmark::State &State) {
  QueueFixture F;
  OpId Front = F.Ctx.lookupOp("FRONT");
  TermId Term =
      F.Ctx.makeOp(Front, {buildQueueTerm(F.Ctx, State.range(0))});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  RewriteEngine Engine(F.Ctx, *F.System, Options);
  (void)Engine.normalize(Term); // Warm.
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.normalize(Term));
}

} // namespace

// {queue length, memoize?}
BENCHMARK(BM_FrontOfDeepQueue)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({1024, 0});
BENCHMARK(BM_DrainQueue)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RepeatedObservationMemoized)->Arg(256)->Arg(1024);

BENCHMARK_MAIN();
