//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E11 — rewrite-engine scalability (supports E8's cost
/// analysis): normalization time vs term size for Queue observations,
/// the ablation of the two design choices DESIGN.md calls out —
/// normal-form memoization and hash consing's O(1) equality (approximated
/// by the memoization toggle, since without the memo every equality
/// re-derives) — and the compiled-vs-interpreted engine series: matching
/// automata + RHS templates against the reference rule-scanning
/// interpreter, including a synthetic many-rule spec where per-redex
/// dispatch dominates.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

using namespace algspec;

namespace {

/// Builds ADD(...ADD(NEW, 'x0)..., 'xN).
TermId buildQueueTerm(AlgebraContext &Ctx, int64_t Length) {
  SortId Item = Ctx.lookupSort("Item");
  OpId New = Ctx.lookupOp("NEW");
  OpId Add = Ctx.lookupOp("ADD");
  TermId Term = Ctx.makeOp(New, {});
  for (int64_t I = 0; I < Length; ++I) {
    TermId Atom = Ctx.makeAtom("x" + std::to_string(I), Item);
    Term = Ctx.makeOp(Add, {Term, Atom});
  }
  return Term;
}

struct QueueFixture {
  QueueFixture() {
    Q = specs::loadQueue(Ctx).take();
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, {&Q}).take());
  }
  AlgebraContext Ctx;
  Spec Q;
  std::unique_ptr<RewriteSystem> System;
};

/// FRONT of an n-deep queue: the recursion walks the whole spine.
void BM_FrontOfDeepQueue(benchmark::State &State) {
  QueueFixture F;
  OpId Front = F.Ctx.lookupOp("FRONT");
  TermId Term =
      F.Ctx.makeOp(Front, {buildQueueTerm(F.Ctx, State.range(0))});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  Options.Memoize = State.range(1) != 0;
  Options.Compile = State.range(2) != 0;
  for (auto _ : State) {
    RewriteEngine Engine(F.Ctx, *F.System, Options);
    benchmark::DoNotOptimize(Engine.normalize(Term));
  }
}

/// Full drain: REMOVE^n then IS_EMPTY?; quadratic in n by the axioms.
void BM_DrainQueue(benchmark::State &State) {
  QueueFixture F;
  OpId Remove = F.Ctx.lookupOp("REMOVE");
  OpId IsEmpty = F.Ctx.lookupOp("IS_EMPTY?");
  TermId Term = buildQueueTerm(F.Ctx, State.range(0));
  for (int64_t I = 0; I < State.range(0); ++I)
    Term = F.Ctx.makeOp(Remove, {Term});
  Term = F.Ctx.makeOp(IsEmpty, {Term});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  Options.Compile = State.range(1) != 0;
  for (auto _ : State) {
    RewriteEngine Engine(F.Ctx, *F.System, Options);
    benchmark::DoNotOptimize(Engine.normalize(Term));
  }
}

/// Re-observation with a warm memo: the value of caching normal forms.
void BM_RepeatedObservationMemoized(benchmark::State &State) {
  QueueFixture F;
  OpId Front = F.Ctx.lookupOp("FRONT");
  TermId Term =
      F.Ctx.makeOp(Front, {buildQueueTerm(F.Ctx, State.range(0))});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  Options.Compile = State.range(1) != 0;
  RewriteEngine Engine(F.Ctx, *F.System, Options);
  (void)Engine.normalize(Term); // Warm.
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.normalize(Term));
}

/// A synthetic spec with one rule per constructor of a single defined
/// op: the workload where rule dispatch, not rewriting, is the cost.
/// The interpreter scans the rule list per redex; the automaton branches
/// on the argument's head symbol in one step.
struct DispatchFixture {
  explicit DispatchFixture(int64_t NumRules) {
    std::string Text = "spec Dispatch\n  sorts D\n  ops\n";
    for (int64_t C = 0; C != NumRules; ++C)
      Text += "    C" + std::to_string(C) + " : -> D\n";
    Text += "    F : D -> D\n  constructors";
    for (int64_t C = 0; C != NumRules; ++C)
      Text += std::string(C != 0 ? "," : "") + " C" + std::to_string(C);
    Text += "\n  axioms\n";
    for (int64_t C = 0; C != NumRules; ++C)
      Text += "    F(C" + std::to_string(C) + ") = C" +
              std::to_string((C + 1) % NumRules) + "\n";
    Text += "end\n";
    Specs = parseSpecText(Ctx, Text).take();
    std::vector<const Spec *> Ptrs;
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, Ptrs).take());
  }
  AlgebraContext Ctx;
  std::vector<Spec> Specs;
  std::unique_ptr<RewriteSystem> System;
};

/// Normalizes F^64(C0), cycling through every rule of the dispatch spec:
/// 64 redexes, each requiring one rule selection among State.range(0).
void BM_ManyRuleDispatch(benchmark::State &State) {
  DispatchFixture F(State.range(0));
  OpId Op = F.Ctx.lookupOp("F");
  TermId Term = F.Ctx.makeOp(F.Ctx.lookupOp("C0"), {});
  for (int I = 0; I != 64; ++I)
    Term = F.Ctx.makeOp(Op, {Term});
  EngineOptions Options;
  Options.MaxSteps = 1ull << 30;
  // The series measures per-redex dispatch, so the one-time automaton
  // construction stays outside the timing loop and memoization is off
  // (with it on, every iteration after the first is a single memo hit).
  Options.Memoize = false;
  Options.Compile = State.range(1) != 0;
  RewriteEngine Engine(F.Ctx, *F.System, Options);
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.normalize(Term));
}

} // namespace

// {queue length, memoize?, compiled?}
BENCHMARK(BM_FrontOfDeepQueue)
    ->Args({64, 1, 1})
    ->Args({256, 1, 1})
    ->Args({1024, 1, 1})
    ->Args({64, 0, 1})
    ->Args({256, 0, 1})
    ->Args({1024, 0, 1})
    ->Args({64, 1, 0})
    ->Args({256, 1, 0})
    ->Args({1024, 1, 0})
    ->Args({64, 0, 0})
    ->Args({256, 0, 0})
    ->Args({1024, 0, 0});
// {queue length, compiled?}
BENCHMARK(BM_DrainQueue)
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0});
// {queue length, compiled?}
BENCHMARK(BM_RepeatedObservationMemoized)
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({256, 0})
    ->Args({1024, 0});
// {rule count, compiled?}
BENCHMARK(BM_ManyRuleDispatch)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({128, 1})
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({128, 0});

ALGSPEC_BENCHMARK_MAIN()
