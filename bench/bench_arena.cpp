//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E17 — arena epochs and packed term nodes. Three claims,
/// each measured directly:
///
///  - truncating a warm context back to a marked epoch and reusing it
///    beats tearing the context down and re-elaborating the specs
///    (BM_EpochTruncateReuse vs BM_FreshContextRebuild);
///  - the packed 20-byte TermNode keeps traversal cheap — the node_bytes
///    counter documents the footprint the traversal rate is paid at
///    (BM_PackedNodeTraversal);
///  - a daemon serving a sustained request stream holds a flat arena:
///    after a 10k-request soak the server's high-water mark must sit
///    near one request's footprint, not 10k of them (BM_DaemonSoak).
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "server/Client.h"
#include "server/Commands.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "specs/BuiltinSpecs.h"
#include "support/Json.h"
#include "support/Socket.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

using namespace algspec;
using namespace algspec::server;

namespace {

/// One request's worth of arena work: build a 64-deep queue with fresh
/// atom names (new interned strings, new terms) and normalize an
/// observation over it. Shared verbatim by the reuse/rebuild pair so
/// their delta is purely the lifecycle strategy.
void sweepOnce(AlgebraContext &Ctx, RewriteEngine &Engine) {
  SortId Item = Ctx.lookupSort("Item");
  OpId New = Ctx.lookupOp("NEW");
  OpId Add = Ctx.lookupOp("ADD");
  OpId Front = Ctx.lookupOp("FRONT");
  TermId Q = Ctx.makeOp(New, {});
  for (int I = 0; I < 64; ++I)
    Q = Ctx.makeOp(Add, {Q, Ctx.makeAtom("item" + std::to_string(I), Item)});
  auto Normal = Engine.normalize(Ctx.makeOp(Front, {Q}));
  if (!Normal)
    std::abort();
  benchmark::DoNotOptimize(Normal->index());
}

/// Epoch lifecycle: elaborate once, mark, then per request sweep and
/// truncate back — O(freed) cleanup, the spec and rules stay warm.
void BM_EpochTruncateReuse(benchmark::State &State) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  if (!Q)
    std::abort();
  Spec Queue = Q.take();
  auto Sys = RewriteSystem::buildChecked(Ctx, {&Queue});
  if (!Sys)
    std::abort();
  RewriteSystem System = Sys.take();
  RewriteEngine Engine(Ctx, System);
  Engine.warmup();
  ArenaEpoch Base = Ctx.markEpoch();
  for (auto _ : State) {
    sweepOnce(Ctx, Engine);
    Ctx.truncateToEpoch(Base);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["arena_high_water"] =
      static_cast<double>(Ctx.arenaStats().HighWaterTerms);
}
BENCHMARK(BM_EpochTruncateReuse)->Unit(benchmark::kMicrosecond);

/// The alternative the epoch API replaces: a fresh context, spec
/// elaboration, rule build, and engine per request.
void BM_FreshContextRebuild(benchmark::State &State) {
  for (auto _ : State) {
    AlgebraContext Ctx;
    auto Q = specs::loadQueue(Ctx);
    if (!Q)
      std::abort();
    Spec Queue = Q.take();
    auto Sys = RewriteSystem::buildChecked(Ctx, {&Queue});
    if (!Sys)
      std::abort();
    RewriteSystem System = Sys.take();
    RewriteEngine Engine(Ctx, System);
    sweepOnce(Ctx, Engine);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FreshContextRebuild)->Unit(benchmark::kMicrosecond);

/// Traversal rate over a large consed DAG. The interesting number is
/// the per-node cost next to the node_bytes counter: the packed node
/// exists so more of the arena stays resident per cache line.
void BM_PackedNodeTraversal(benchmark::State &State) {
  AlgebraContext Ctx;
  SortId Queue = Ctx.addSort("Queue", SortKind::User);
  SortId Item = Ctx.getOrAddAtomSort("Item");
  OpId New = Ctx.addOp("NEW", {}, Queue, OpKind::Constructor);
  OpId Add =
      Ctx.addOp("ADD", {Queue, Item}, Queue, OpKind::Constructor);
  TermId Root = Ctx.makeOp(New, {});
  const unsigned Depth = static_cast<unsigned>(State.range(0));
  for (unsigned I = 0; I < Depth; ++I)
    Root = Ctx.makeOp(
        Add, {Root, Ctx.makeAtom("item" + std::to_string(I % 97), Item)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Ctx.dagSize(Root));
  State.SetItemsProcessed(State.iterations() * Ctx.dagSize(Root));
  State.counters["node_bytes"] = static_cast<double>(sizeof(TermNode));
}
BENCHMARK(BM_PackedNodeTraversal)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMicrosecond);

/// One server for the soak, torn down with statics after Shutdown.
class SoakServer {
public:
  static SoakServer &instance() {
    static SoakServer S;
    return S;
  }

  const SocketAddress &addr() const { return Addr; }

private:
  SoakServer() : S(options()) {
    if (!S.start())
      std::abort();
    Addr = *SocketAddress::parse("tcp:127.0.0.1:" +
                                 std::to_string(S.boundTcpPort()));
  }

  ~SoakServer() {
    S.requestStop();
    S.wait();
  }

  static ServerOptions options() {
    ServerOptions O;
    O.Listen.push_back(*SocketAddress::parse("tcp:127.0.0.1:0"));
    O.Workers = 2;
    O.QueueMax = 256;
    return O;
  }

  Server S;
  SocketAddress Addr;
};

/// Sustained daemon soak, pinned at exactly 10k iterations so the run
/// is the memory-curve experiment and not a timing estimate: after 10k
/// served requests, soak_high_water_terms must be request-count-
/// independent (flat curve) and soak_truncations must track the
/// request count — both read back from the server's own stats frame.
void BM_DaemonSoak(benchmark::State &State) {
  const SocketAddress &Addr = SoakServer::instance().addr();
  Result<Socket> Sock = connectSocket(Addr);
  if (!Sock)
    std::abort();
  FrameReader Reader(64u << 20);
  CommandRequest Req;
  Req.Command = "eval";
  Req.Sources.push_back({"queue.alg", std::string(builtinSpecText("queue"))});
  Req.Opts.TermText = "FRONT(ADD(ADD(NEW, 'a), 'b))";
  Req.Opts.Jobs = 1;
  std::string Frame = encodeCommandRequest("1", Req);
  for (auto _ : State) {
    Result<WireResponse> R = roundTrip(*Sock, Reader, Frame);
    if (!R || R->Type != "response")
      std::abort();
    benchmark::DoNotOptimize(R->Out.data());
  }
  State.SetItemsProcessed(State.iterations());

  Result<WireResponse> Stats =
      roundTrip(*Sock, Reader, encodeControlRequest("2", "stats"));
  if (!Stats)
    std::abort();
  Result<JsonValue> Parsed = parseJson(Stats->Raw);
  if (!Parsed || !Parsed->isObject())
    std::abort();
  if (const JsonValue *Arena = Parsed->get("arena")) {
    if (const JsonValue *V = Arena->get("highWaterTerms"))
      State.counters["soak_high_water_terms"] =
          static_cast<double>(V->asInt());
    if (const JsonValue *V = Arena->get("truncations"))
      State.counters["soak_truncations"] = static_cast<double>(V->asInt());
    if (const JsonValue *V = Arena->get("bytesFreed"))
      State.counters["soak_bytes_freed"] = static_cast<double>(V->asInt());
  }
}
BENCHMARK(BM_DaemonSoak)->Iterations(10000)->Unit(benchmark::kMicrosecond);

} // namespace

ALGSPEC_BENCHMARK_MAIN()
