//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E15 — the serve daemon's round-trip economics. A
/// long-lived server only pays off if (a) the wire round trip costs
/// little over calling the command layer directly, and (b) the
/// workspace cache actually removes the per-request elaboration cost.
/// This bench measures both: direct dispatch as the floor, cache-hit
/// and cache-miss round trips against an in-process server on a
/// loopback socket, and ping-pong throughput as client connections
/// scale.
///
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Commands.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "support/Socket.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>

using namespace algspec;
using namespace algspec::server;

namespace {

/// One server for the whole binary, drained when statics die (after
/// benchmark::Shutdown, before process exit).
class BenchServer {
public:
  static BenchServer &instance() {
    static BenchServer S;
    return S;
  }

  const SocketAddress &addr() const { return Addr; }

private:
  BenchServer() : S(options()) {
    if (!S.start())
      std::abort();
    Addr = *SocketAddress::parse("tcp:127.0.0.1:" +
                                 std::to_string(S.boundTcpPort()));
  }

  ~BenchServer() {
    S.requestStop();
    S.wait();
  }

  static ServerOptions options() {
    ServerOptions O;
    O.Listen.push_back(*SocketAddress::parse("tcp:127.0.0.1:0"));
    O.Workers = 2;
    O.QueueMax = 256;
    return O;
  }

  Server S;
  SocketAddress Addr;
};

CommandRequest evalRequest() {
  CommandRequest R;
  R.Command = "eval";
  R.Sources.push_back({"queue.alg", std::string(builtinSpecText("queue"))});
  R.Opts.TermText = "FRONT(ADD(ADD(NEW, 'a), 'b))";
  R.Opts.Jobs = 1;
  return R;
}

/// The floor: the same command through the in-process dispatch path the
/// one-shot CLI uses — no socket, no JSON, no cache.
void BM_DirectDispatch(benchmark::State &State) {
  CommandRequest Req = evalRequest();
  for (auto _ : State) {
    CommandResult R = runCommand(Req);
    benchmark::DoNotOptimize(R.Out.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DirectDispatch)->Unit(benchmark::kMicrosecond);

/// Steady state: the workspace is already cached, so a round trip pays
/// only framing, queueing, and the rewrite itself.
void BM_RoundTripCacheHit(benchmark::State &State) {
  const SocketAddress &Addr = BenchServer::instance().addr();
  Result<Socket> Sock = connectSocket(Addr);
  if (!Sock)
    std::abort();
  FrameReader Reader(64u << 20);
  std::string Frame = encodeCommandRequest("1", evalRequest());
  // Prime the cache so the timed loop measures hits only.
  (void)roundTrip(*Sock, Reader, Frame);
  for (auto _ : State) {
    Result<WireResponse> R = roundTrip(*Sock, Reader, Frame);
    if (!R || R->Type != "response")
      std::abort();
    benchmark::DoNotOptimize(R->Out.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RoundTripCacheHit)->Unit(benchmark::kMicrosecond);

/// Cold path: every request names a never-seen source buffer (the cache
/// keys on names and bytes), so the server re-elaborates the workspace
/// each time. The gap to BM_RoundTripCacheHit is what the cache buys.
void BM_RoundTripColdWorkspace(benchmark::State &State) {
  const SocketAddress &Addr = BenchServer::instance().addr();
  Result<Socket> Sock = connectSocket(Addr);
  if (!Sock)
    std::abort();
  FrameReader Reader(64u << 20);
  static std::atomic<uint64_t> Unique{0};
  for (auto _ : State) {
    CommandRequest Req = evalRequest();
    Req.Sources[0].Name =
        "queue-" + std::to_string(Unique.fetch_add(1)) + ".alg";
    Result<WireResponse> R =
        roundTrip(*Sock, Reader, encodeCommandRequest("1", Req));
    if (!R || R->Type != "response" || R->Cached)
      std::abort();
    benchmark::DoNotOptimize(R->Out.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RoundTripColdWorkspace)->Unit(benchmark::kMicrosecond);

/// Ping-pong throughput as concurrent client connections scale; each
/// bench thread holds one connection.
void BM_ThroughputConnections(benchmark::State &State) {
  const SocketAddress &Addr = BenchServer::instance().addr();
  Result<Socket> Sock = connectSocket(Addr);
  if (!Sock)
    std::abort();
  FrameReader Reader(64u << 20);
  std::string Frame = encodeCommandRequest("1", evalRequest());
  (void)roundTrip(*Sock, Reader, Frame);
  for (auto _ : State) {
    Result<WireResponse> R = roundTrip(*Sock, Reader, Frame);
    if (!R || R->Type != "response")
      std::abort();
    benchmark::DoNotOptimize(R->Out.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ThroughputConnections)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond);

/// Control-plane latency: a stats request never touches the queue or a
/// workspace, so this is the floor for one framed round trip.
void BM_RoundTripControlStats(benchmark::State &State) {
  const SocketAddress &Addr = BenchServer::instance().addr();
  Result<Socket> Sock = connectSocket(Addr);
  if (!Sock)
    std::abort();
  FrameReader Reader(64u << 20);
  std::string Frame = encodeControlRequest("1", "stats");
  for (auto _ : State) {
    Result<WireResponse> R = roundTrip(*Sock, Reader, Frame);
    if (!R || R->Type != "stats")
      std::abort();
    benchmark::DoNotOptimize(R->Raw.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RoundTripControlStats)->Unit(benchmark::kMicrosecond);

} // namespace

ALGSPEC_BENCHMARK_MAIN()
