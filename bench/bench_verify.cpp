//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E13 — cost of the mechanized section-4 proof: bounded
/// generator-induction verification of the Symboltable representation as
/// a function of the induction depth, in both value domains. The series
/// shows the exponential growth that makes the bound a real knob (and
/// why Musser's full proof was worth mechanizing symbolically).
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;

namespace {

struct RepFixture {
  RepFixture() {
    Abstract = specs::loadSymboltable(Ctx).take();
    Concrete = specs::loadStackArray(Ctx).take();
    Rep = buildSymboltableRep(Ctx).take();
    Sources.push_back(&Abstract);
    for (const Spec &S : Concrete)
      Sources.push_back(&S);
    for (const Spec &S : Rep.ImplSpecs)
      Sources.push_back(&S);
  }

  AlgebraContext Ctx;
  Spec Abstract;
  std::vector<Spec> Concrete;
  SymboltableRep Rep;
  std::vector<const Spec *> Sources;
};

void BM_VerifyReachable(benchmark::State &State) {
  RepFixture F;
  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = static_cast<unsigned>(State.range(0));
  uint64_t Instances = 0;
  for (auto _ : State) {
    VerifyReport Report = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                               F.Rep.Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
    Instances = 0;
    for (const AxiomVerdict &V : Report.Verdicts)
      Instances += V.InstancesChecked;
  }
  State.counters["instances"] = static_cast<double>(Instances);
}

void BM_VerifyFreeTerms(benchmark::State &State) {
  RepFixture F;
  VerifyOptions Options;
  Options.Domain = ValueDomain::FreeTerms;
  Options.Depth = static_cast<unsigned>(State.range(0));
  Options.Invariant = F.Ctx.lookupOp("VALID_REP?");
  uint64_t Instances = 0;
  for (auto _ : State) {
    VerifyReport Report = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                               F.Rep.Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
    Instances = 0;
    for (const AxiomVerdict &V : Report.Verdicts)
      Instances += V.InstancesChecked;
  }
  State.counters["instances"] = static_cast<double>(Instances);
}


/// Thread-scaling series for the sharded instance sweep: the depth-4
/// reachable-domain verification at jobs = 1, 2, 4, 8. The symbolic
/// attempts and value collection stay serial, so this also exposes the
/// Amdahl fraction of the pipeline.
void BM_VerifyJobs(benchmark::State &State) {
  RepFixture F;
  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = 4;
  // Force the sweep to do the work: symbolic proofs would discharge
  // most obligations before any instance is visited.
  Options.TrySymbolic = false;
  Options.Par.Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    VerifyReport Report = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                               F.Rep.Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
  }
}

void BM_VerifyHomomorphism(benchmark::State &State) {
  RepFixture F;
  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    VerifyReport Report = verifyHomomorphism(F.Ctx, F.Abstract, F.Sources,
                                             F.Rep.Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
  }
}

} // namespace

BENCHMARK(BM_VerifyReachable)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifyFreeTerms)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifyJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_VerifyHomomorphism)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
