//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic symbol-table workload generation shared by the
/// benchmark binaries (experiments E8, E9).
///
/// A workload is a sequence of symbol-table operations shaped like a
/// compiler pass over a block-structured program: blocks open and close
/// with bounded nesting, each block declares identifiers, and lookups
/// mix local and outer names according to a lookup:declare ratio.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_BENCH_WORKLOAD_H
#define ALGSPEC_BENCH_WORKLOAD_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace algspec {
namespace bench {

/// One symbol-table operation.
struct SymtabOp {
  enum class Kind : uint8_t { Enter, Leave, Add, Lookup, IsInBlock };
  Kind K;
  std::string Id;
};

/// Workload shape parameters.
struct WorkloadParams {
  unsigned NumOps = 1000;      ///< Total operations to generate.
  unsigned MaxDepth = 8;       ///< Maximum block nesting.
  unsigned IdentsPerBlock = 8; ///< Fresh declarations per opened block.
  /// Out of 100: how many non-structural ops are lookups (the rest are
  /// declarations). Compilers are lookup-heavy; the paper's point is
  /// that the designer cannot know this ratio up front.
  unsigned LookupPercent = 70;
  /// Out of 100: how many lookups target names from *outer* blocks
  /// (deep searches) rather than the current block.
  unsigned OuterLookupPercent = 30;
  uint64_t Seed = 42;
};

/// Generates a deterministic workload for \p P.
inline std::vector<SymtabOp> makeWorkload(const WorkloadParams &P) {
  std::mt19937_64 Rng(P.Seed);
  std::uniform_int_distribution<unsigned> Percent(0, 99);

  std::vector<SymtabOp> Ops;
  Ops.reserve(P.NumOps);

  // Per-depth declared names, mirroring what a checker could look up.
  std::vector<std::vector<std::string>> Declared(1);
  unsigned Counter = 0;

  auto declare = [&](unsigned Depth) {
    std::string Id = "id" + std::to_string(Counter++);
    Declared[Depth].push_back(Id);
    Ops.push_back(SymtabOp{SymtabOp::Kind::Add, std::move(Id)});
  };

  // Seed the outermost scope.
  for (unsigned I = 0; I < P.IdentsPerBlock && Ops.size() < P.NumOps; ++I)
    declare(0);

  while (Ops.size() < P.NumOps) {
    unsigned Depth = static_cast<unsigned>(Declared.size()) - 1;
    unsigned Roll = Percent(Rng);

    // Structural moves ~15% of the time, biased to keep depth bounded.
    if (Roll < 15) {
      bool CanEnter = Depth + 1 < P.MaxDepth;
      bool CanLeave = Depth > 0;
      bool Enter = CanEnter && (!CanLeave || Percent(Rng) < 55);
      if (Enter) {
        Ops.push_back(SymtabOp{SymtabOp::Kind::Enter, {}});
        Declared.emplace_back();
        for (unsigned I = 0;
             I < P.IdentsPerBlock && Ops.size() < P.NumOps; ++I)
          declare(Depth + 1);
      } else if (CanLeave) {
        Ops.push_back(SymtabOp{SymtabOp::Kind::Leave, {}});
        Declared.pop_back();
      }
      continue;
    }

    if (Percent(Rng) < P.LookupPercent) {
      // Lookup: pick a declared name, local or outer.
      unsigned TargetDepth = Depth;
      if (Depth > 0 && Percent(Rng) < P.OuterLookupPercent)
        TargetDepth = Percent(Rng) % Depth; // Strictly outer.
      // Find a non-empty depth at or below the target.
      while (Declared[TargetDepth].empty() && TargetDepth > 0)
        --TargetDepth;
      if (Declared[TargetDepth].empty())
        continue;
      std::uniform_int_distribution<size_t> Pick(
          0, Declared[TargetDepth].size() - 1);
      Ops.push_back(SymtabOp{SymtabOp::Kind::Lookup,
                             Declared[TargetDepth][Pick(Rng)]});
    } else {
      declare(Depth);
    }
  }
  return Ops;
}

/// Replays \p Ops against any table with the common interface; returns a
/// checksum so the compiler cannot elide the work.
template <typename Table>
uint64_t replay(Table &T, const std::vector<SymtabOp> &Ops) {
  uint64_t Checksum = 0;
  for (const SymtabOp &Op : Ops) {
    switch (Op.K) {
    case SymtabOp::Kind::Enter:
      T.enterBlock();
      break;
    case SymtabOp::Kind::Leave:
      Checksum += T.leaveBlock();
      break;
    case SymtabOp::Kind::Add:
      T.add(Op.Id, 1);
      break;
    case SymtabOp::Kind::Lookup:
      Checksum += T.retrieve(Op.Id).has_value();
      break;
    case SymtabOp::Kind::IsInBlock:
      Checksum += T.isInBlock(Op.Id);
      break;
    }
  }
  return Checksum;
}

} // namespace bench
} // namespace algspec

#endif // ALGSPEC_BENCH_WORKLOAD_H
