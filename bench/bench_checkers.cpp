//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E12 — the paper's completeness system "prompts the user",
/// so it has to answer at interactive speed. This bench sweeps synthetic
/// specs (K defined operations over a sort with C constructors, full
/// axiom coverage) through the static completeness checker and the
/// critical-pair consistency checker, and also times the real paper
/// specs.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace algspec;

namespace {

/// Builds a spec with \p NumCtors constructors (one nullary + the rest
/// unary-recursive) and \p NumOps defined ops, each with a full set of
/// per-constructor axioms.
std::string syntheticSpec(int64_t NumCtors, int64_t NumOps) {
  std::string S = "spec Synth\n  sorts T\n  ops\n    C0 : -> T\n";
  for (int64_t C = 1; C < NumCtors; ++C)
    S += "    C" + std::to_string(C) + " : T -> T\n";
  for (int64_t F = 0; F < NumOps; ++F)
    S += "    F" + std::to_string(F) + " : T -> Bool\n";
  S += "  constructors C0";
  for (int64_t C = 1; C < NumCtors; ++C)
    S += ", C" + std::to_string(C);
  S += "\n  vars x : T\n  axioms\n";
  for (int64_t F = 0; F < NumOps; ++F) {
    S += "    F" + std::to_string(F) + "(C0) = true\n";
    for (int64_t C = 1; C < NumCtors; ++C)
      S += "    F" + std::to_string(F) + "(C" + std::to_string(C) +
           "(x)) = F" + std::to_string(F) + "(x)\n";
  }
  S += "end\n";
  return S;
}

void BM_CompletenessSynthetic(benchmark::State &State) {
  AlgebraContext Ctx;
  auto Parsed =
      parseSpecText(Ctx, syntheticSpec(State.range(0), State.range(1)));
  Spec S = std::move(Parsed->front());
  for (auto _ : State)
    benchmark::DoNotOptimize(checkCompleteness(Ctx, S));
}

void BM_ConsistencySynthetic(benchmark::State &State) {
  AlgebraContext Ctx;
  auto Parsed =
      parseSpecText(Ctx, syntheticSpec(State.range(0), State.range(1)));
  Spec S = std::move(Parsed->front());
  for (auto _ : State)
    benchmark::DoNotOptimize(checkConsistency(Ctx, {&S}));
}

void BM_CompletenessPaperSpecs(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  Spec Sym = specs::loadSymboltable(Ctx).take();
  auto StackArray = specs::loadStackArray(Ctx).take();
  for (auto _ : State) {
    benchmark::DoNotOptimize(checkCompleteness(Ctx, Q));
    benchmark::DoNotOptimize(checkCompleteness(Ctx, Sym));
    for (const Spec &S : StackArray)
      benchmark::DoNotOptimize(checkCompleteness(Ctx, S));
  }
}

void BM_ConsistencyPaperSpecs(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  Spec Sym = specs::loadSymboltable(Ctx).take();
  for (auto _ : State)
    benchmark::DoNotOptimize(checkConsistency(Ctx, {&Q, &Sym}));
}

void BM_DynamicCompletenessQueue(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        checkCompletenessDynamic(Ctx, Q, {&Q}, Depth));
}

/// Thread-scaling series for the sharded dynamic sweep: a fixed deep
/// workload at jobs = 1, 2, 4, 8. The verdict is byte-identical across
/// the series; only the wall clock should move. Symboltable checked
/// against the full Stack-of-Arrays rule set is the deepest shipped
/// workload: its operations take Identifier and Attributes arguments,
/// so a widened atom universe multiplies the instance space.
void BM_DynamicCompletenessJobs(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Sym = specs::loadSymboltable(Ctx).take();
  std::vector<Spec> SA = specs::loadStackArray(Ctx).take();
  std::vector<const Spec *> All{&Sym};
  for (const Spec &S : SA)
    All.push_back(&S);
  EnumeratorOptions Enum;
  Enum.AtomUniverse = 3;
  ParallelOptions Par;
  Par.Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(checkCompletenessDynamic(
        Ctx, Sym, All, /*MaxDepth=*/4, Enum, Par));
}

/// Thread-scaling series for the sharded critical-pair sweep over a
/// synthetic spec big enough to have thousands of rule pairs.
void BM_ConsistencyJobs(benchmark::State &State) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, syntheticSpec(4, 16));
  Spec S = std::move(Parsed->front());
  ParallelOptions Par;
  Par.Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(checkConsistency(
        Ctx, {&S}, /*GroundDepth=*/3, EnumeratorOptions(), Par));
}

} // namespace

// {constructors, defined ops}
BENCHMARK(BM_CompletenessSynthetic)
    ->Args({2, 4})
    ->Args({2, 16})
    ->Args({2, 64})
    ->Args({8, 16})
    ->Args({16, 16});
BENCHMARK(BM_ConsistencySynthetic)->Args({2, 4})->Args({2, 16})->Args({8, 8});
BENCHMARK(BM_CompletenessPaperSpecs);
BENCHMARK(BM_ConsistencyPaperSpecs);
BENCHMARK(BM_DynamicCompletenessQueue)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_DynamicCompletenessJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ConsistencyJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

ALGSPEC_BENCHMARK_MAIN()
