//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E16 — what a convergence certificate costs and what it
/// buys. Three series:
///
///  1. the certifier itself (termination proof + critical-pair
///     enumeration + guard-aware joins) on orthogonal and on obstructed
///     workspaces;
///  2. the consistency check with and without the certificate — the
///     certified path proves consistency and skips the R x R
///     critical-pair sweep entirely, so the gap is the sweep the
///     certificate replaces;
///  3. representation verification with and without the decidable-
///     equality shortcut, on a rep the certificate covers (Switch as
///     tick counters) and on the paper's Symboltable rep, which stays
///     uncertified (RETRIEVE_R) and so prices the certifier's overhead
///     on the honest-unknown path.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"
#include "specs/BuiltinSpecs.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;

namespace {

/// Switch-as-counter representation: convergent, so the certificate
/// upgrades every equality to a decision procedure.
constexpr std::string_view SwitchAlg = R"(
spec Switch
  sorts Sw
  ops
    OFF : -> Sw
    FLIP : Sw -> Sw
    LIT? : Sw -> Bool
  constructors OFF, FLIP
  vars s : Sw
  axioms
    LIT?(OFF) = false
    LIT?(FLIP(s)) = not(LIT?(s))
end

spec Counter
  sorts Cnt
  ops
    ZERO : -> Cnt
    TICK : Cnt -> Cnt
    OFF_R : -> Cnt
    FLIP_R : Cnt -> Cnt
    LIT_R? : Cnt -> Bool
  constructors ZERO, TICK
  vars c : Cnt
  axioms
    OFF_R = ZERO
    FLIP_R(c) = TICK(c)
    LIT_R?(ZERO) = false
    LIT_R?(TICK(c)) = not(LIT_R?(c))
end

spec Abstraction
  uses Sw, Cnt
  ops
    PHI : Cnt -> Sw
  vars c : Cnt
  axioms
    PHI(ZERO) = OFF
    PHI(TICK(c)) = FLIP(PHI(c))
end
)";

/// Four orthogonal builtins analyzed together — the workspace every
/// certified-consistency series runs on.
void loadOrthogonalFamily(Workspace &WS) {
  (void)WS.load(specs::QueueAlg, "queue.alg");
  (void)WS.load(specs::SymboltableAlg, "symboltable.alg");
  (void)WS.load(specs::StackArrayAlg, "stackarray.alg");
  (void)WS.load(specs::BoundedQueueAlg, "boundedqueue.alg");
}

//===----------------------------------------------------------------------===//
// 1. Certifier cost
//===----------------------------------------------------------------------===//

void BM_CertifyOrthogonalFamily(benchmark::State &State) {
  Workspace WS;
  loadOrthogonalFamily(WS);
  for (auto _ : State) {
    ConvergenceReport Report = WS.convergence();
    benchmark::DoNotOptimize(Report.Overall);
  }
}

void BM_CertifyObstructedFamily(benchmark::State &State) {
  // SymboltableImpl blocks on termination: the certifier still proves
  // the siblings and names the obstruction.
  Workspace WS;
  (void)WS.load(specs::SymboltableAlg, "symboltable.alg");
  (void)WS.load(specs::StackArrayAlg, "stackarray.alg");
  (void)WS.load(specs::SymboltableImplAlg, "symboltable_impl.alg");
  for (auto _ : State) {
    ConvergenceReport Report = WS.convergence();
    benchmark::DoNotOptimize(Report.Overall);
  }
}

//===----------------------------------------------------------------------===//
// 2. Consistency: certificate vs ground sweep
//===----------------------------------------------------------------------===//

void BM_ConsistencyCertified(benchmark::State &State) {
  // The certificate is a once-per-workspace artifact (the serve daemon
  // computes it when a cached workspace is built); every consistency
  // check after that reuses it and skips the R x R critical-pair
  // sweep. This series measures the check with the certificate in
  // hand — BM_CertifyOrthogonalFamily above prices the one-time
  // certification it amortizes.
  Workspace WS;
  loadOrthogonalFamily(WS);
  ConvergenceReport Cert = WS.convergence();
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    ConsistencyReport Report =
        checkConsistency(WS.context(), WS.specPointers(), Depth,
                         EnumeratorOptions(), ParallelOptions(),
                         EngineOptions(), &Cert);
    benchmark::DoNotOptimize(Report.Consistent);
  }
}

void BM_ConsistencyGroundSweep(benchmark::State &State) {
  Workspace WS;
  loadOrthogonalFamily(WS);
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    ConsistencyReport Report =
        checkConsistency(WS.context(), WS.specPointers(), Depth,
                         EnumeratorOptions(), ParallelOptions(),
                         EngineOptions());
    benchmark::DoNotOptimize(Report.Consistent);
  }
}

//===----------------------------------------------------------------------===//
// 3. Verification with and without the shortcut
//===----------------------------------------------------------------------===//

RepMapping switchMapping(Workspace &WS) {
  RepMapping Mapping;
  Mapping.AbstractSort = WS.context().lookupSort("Sw");
  Mapping.RepSort = WS.context().lookupSort("Cnt");
  Mapping.Phi = WS.context().lookupOp("PHI");
  Mapping.OpMap.emplace(WS.context().lookupOp("OFF"),
                        WS.context().lookupOp("OFF_R"));
  Mapping.OpMap.emplace(WS.context().lookupOp("FLIP"),
                        WS.context().lookupOp("FLIP_R"));
  Mapping.OpMap.emplace(WS.context().lookupOp("LIT?"),
                        WS.context().lookupOp("LIT_R?"));
  return Mapping;
}

/// range(0): verification depth; range(1): UseConvergence off/on.
void BM_VerifySwitchRep(benchmark::State &State) {
  Workspace WS;
  (void)WS.load(SwitchAlg, "switch.alg");
  const Spec *Abstract = WS.find("Switch");
  RepMapping Mapping = switchMapping(WS);
  VerifyOptions Options;
  Options.Depth = static_cast<unsigned>(State.range(0));
  Options.UseConvergence = State.range(1) != 0;
  uint64_t Instances = 0;
  for (auto _ : State) {
    VerifyReport Report = verifyRepresentation(
        WS.context(), *Abstract, WS.specPointers(), Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
    Instances = 0;
    for (const AxiomVerdict &V : Report.Verdicts)
      Instances += V.InstancesChecked;
  }
  State.counters["instances"] = static_cast<double>(Instances);
}

/// The paper's Symboltable rep: the certificate never holds here
/// (RETRIEVE_R recurses through POP), so range(1) = 1 prices the
/// certifier's overhead on a verification it cannot shortcut.
void BM_VerifySymboltableRep(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Abstract = specs::loadSymboltable(Ctx).take();
  std::vector<Spec> Concrete = specs::loadStackArray(Ctx).take();
  SymboltableRep Rep = buildSymboltableRep(Ctx).take();
  std::vector<const Spec *> Sources;
  Sources.push_back(&Abstract);
  for (const Spec &S : Concrete)
    Sources.push_back(&S);
  for (const Spec &S : Rep.ImplSpecs)
    Sources.push_back(&S);
  VerifyOptions Options;
  Options.Depth = static_cast<unsigned>(State.range(0));
  Options.UseConvergence = State.range(1) != 0;
  for (auto _ : State) {
    VerifyReport Report = verifyRepresentation(Ctx, Abstract, Sources,
                                               Rep.Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
  }
}

} // namespace

BENCHMARK(BM_CertifyOrthogonalFamily)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CertifyObstructedFamily)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConsistencyCertified)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConsistencyGroundSweep)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifySwitchRep)
    ->Args({4, 0})->Args({4, 1})->Args({6, 0})->Args({6, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifySymboltableRep)->Args({3, 0})->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
