//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E19 — the equality-saturation oracle against the
/// per-instance sweep it screens. The headline A/B is the section-4
/// Symboltable verification: `BM_VerifyScreened/<depth>` (oracle
/// consulted, `--egraph=auto`) against `BM_VerifySweepOnly/<depth>`
/// (`--egraph=off`) on the exact BM_VerifyReachable workload from
/// bench_verify.cpp. One saturation discharges an obligation for *every*
/// instance, so the gap widens with depth as the sweep's instance count
/// grows exponentially while the proof cost stays flat. The micro-series
/// isolate the e-graph primitives the oracle is built from: congruence
/// propagation through merge+rebuild chains, and the batch screen's
/// cost per obligation pair.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "egraph/EGraph.h"
#include "egraph/EqSat.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;

namespace {

struct RepFixture {
  RepFixture() {
    Abstract = specs::loadSymboltable(Ctx).take();
    Concrete = specs::loadStackArray(Ctx).take();
    Rep = buildSymboltableRep(Ctx).take();
    Sources.push_back(&Abstract);
    for (const Spec &S : Concrete)
      Sources.push_back(&S);
    for (const Spec &S : Rep.ImplSpecs)
      Sources.push_back(&S);
  }

  AlgebraContext Ctx;
  Spec Abstract;
  std::vector<Spec> Concrete;
  SymboltableRep Rep;
  std::vector<const Spec *> Sources;
};

void runVerify(benchmark::State &State, EqSatMode Mode) {
  RepFixture F;
  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = static_cast<unsigned>(State.range(0));
  Options.EGraph = Mode;
  uint64_t EGraphNodes = 0;
  for (auto _ : State) {
    VerifyReport Report = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                               F.Rep.Mapping, Options);
    benchmark::DoNotOptimize(Report.AllHold);
    EGraphNodes = Report.Engine.EGraphNodes;
  }
  State.counters["egraph_nodes"] = static_cast<double>(EGraphNodes);
}

/// The oracle consulted (--egraph=auto): obligations the saturation
/// discharges skip their whole instance sweep.
void BM_VerifyScreened(benchmark::State &State) {
  runVerify(State, EqSatMode::Auto);
}

/// The reference sweep (--egraph=off): every obligation is checked
/// instance by instance. Same workload as bench_verify's
/// BM_VerifyReachable before the oracle existed.
void BM_VerifySweepOnly(benchmark::State &State) {
  runVerify(State, EqSatMode::Off);
}

/// Congruence propagation: register two REMOVE-chains of length n over
/// distinct queue variables, merge the roots' variables, and rebuild.
/// The worklist must walk the whole chain, one hash-consed collision
/// per level — the primitive the saturation loop leans on hardest.
void BM_EGraphCongruenceChain(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Queue = specs::loadQueue(Ctx).take();
  std::vector<const Spec *> Ptrs = {&Queue};
  RewriteSystem System = RewriteSystem::buildChecked(Ctx, Ptrs).take();
  SortId QueueSort = Ctx.lookupSort("Queue");
  OpId Remove = Ctx.lookupOp("REMOVE");
  const unsigned N = static_cast<unsigned>(State.range(0));
  TermId X = Ctx.makeVar(Ctx.addVar("x", QueueSort));
  TermId Y = Ctx.makeVar(Ctx.addVar("y", QueueSort));
  TermId ChainX = X, ChainY = Y;
  for (unsigned I = 0; I != N; ++I) {
    ChainX = Ctx.makeOp(Remove, {ChainX});
    ChainY = Ctx.makeOp(Remove, {ChainY});
  }
  uint64_t Merges = 0;
  for (auto _ : State) {
    EGraph G(Ctx);
    G.add(ChainX);
    G.add(ChainY);
    G.merge(X, Y);
    G.rebuild();
    benchmark::DoNotOptimize(G.same(ChainX, ChainY));
    Merges = G.merges();
  }
  State.counters["merges"] = static_cast<double>(Merges);
}

/// The consistency screen's shape: one saturation over a batch of n
/// ground obligation pairs, every verdict read off the shared graph.
void BM_EqSatBatch(benchmark::State &State) {
  AlgebraContext Ctx;
  Spec Queue = specs::loadQueue(Ctx).take();
  std::vector<const Spec *> Ptrs = {&Queue};
  RewriteSystem System = RewriteSystem::buildChecked(Ctx, Ptrs).take();
  RewriteEngine Engine(Ctx, System, EngineOptions());
  SortId ItemSort = Ctx.lookupSort("Item");
  OpId Add = Ctx.lookupOp("ADD");
  OpId Front = Ctx.lookupOp("FRONT");
  TermId New = Ctx.makeOp(Ctx.lookupOp("NEW"), {});
  TermId A = Ctx.makeAtom("a", ItemSort);
  // FRONT(ADD^k(NEW, a)) = a for k = 1..n: each pair needs k guard
  // folds, all discharged by the one shared saturation.
  std::vector<std::pair<TermId, TermId>> Pairs;
  TermId Q = New;
  for (int K = 0; K != State.range(0); ++K) {
    Q = Ctx.makeOp(Add, {Q, A});
    Pairs.emplace_back(Ctx.makeOp(Front, {Q}), A);
  }
  uint64_t Proved = 0;
  for (auto _ : State) {
    EqSatProver Prover(Ctx, System, Engine);
    std::vector<uint8_t> Out = Prover.proveBatch(Pairs);
    Proved = 0;
    for (uint8_t P : Out)
      Proved += P;
    benchmark::DoNotOptimize(Proved);
  }
  State.counters["proved"] = static_cast<double>(Proved);
}

} // namespace

BENCHMARK(BM_VerifyScreened)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifySweepOnly)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EGraphCongruenceChain)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EqSatBatch)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
