//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E18 — what a static exhaustiveness certificate costs and
/// what it buys. Three series:
///
///  1. the dynamic completeness ground sweep at increasing depths — the
///     bounded refutation procedure the certificate replaces, whose cost
///     grows with the enumerated argument universe;
///  2. the same check holding a covering certificate — the sweep is
///     skipped outright, so the series prices the fixed overhead of the
///     skip path and the gap against (1) is what certification buys per
///     check;
///  3. the certifier itself as the workspace grows one builtin at a
///     time — matrix construction and the usefulness sweep scale with
///     the rule count, and the certificate is a once-per-workspace
///     artifact amortized over every later check.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"
#include "specs/BuiltinSpecs.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace algspec;

namespace {

/// The certifying builtins the scaling series accumulates, in a fixed
/// order so range(0) = N always names the same N-spec workspace.
const struct {
  std::string_view Text;
  const char *Name;
} Family[] = {
    {specs::QueueAlg, "queue.alg"},
    {specs::SymboltableAlg, "symboltable.alg"},
    {specs::StackArrayAlg, "stackarray.alg"},
    {specs::BoundedQueueAlg, "boundedqueue.alg"},
    {specs::ListAlg, "list.alg"},
    {specs::BstAlg, "bst.alg"},
};

void loadFamily(Workspace &WS, size_t Count) {
  for (size_t I = 0; I != Count && I != std::size(Family); ++I)
    (void)WS.load(Family[I].Text, Family[I].Name);
}

//===----------------------------------------------------------------------===//
// 1. The ground sweep the certificate replaces
//===----------------------------------------------------------------------===//

void BM_CompletenessGroundSweep(benchmark::State &State) {
  Workspace WS;
  (void)WS.load(specs::QueueAlg, "queue.alg");
  const Spec &Q = WS.specs()[0];
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    CompletenessReport Report = checkCompletenessDynamic(
        WS.context(), Q, WS.specPointers(), Depth);
    benchmark::DoNotOptimize(Report.SufficientlyComplete);
  }
}

//===----------------------------------------------------------------------===//
// 2. The certified skip
//===----------------------------------------------------------------------===//

void BM_CompletenessCertified(benchmark::State &State) {
  // The certificate is a once-per-workspace artifact; every check after
  // that reuses it and skips the sweep. BM_ExhaustivenessCertify below
  // prices the one-time certification this amortizes.
  Workspace WS;
  (void)WS.load(specs::QueueAlg, "queue.alg");
  const Spec &Q = WS.specs()[0];
  ExhaustivenessReport Cert = WS.exhaustiveness();
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    CompletenessReport Report = checkCompletenessDynamic(
        WS.context(), Q, WS.specPointers(), Depth, EnumeratorOptions(),
        ParallelOptions(), EngineOptions(), &Cert);
    benchmark::DoNotOptimize(Report.SufficientlyComplete);
  }
}

//===----------------------------------------------------------------------===//
// 3. Certifier scaling with the rule count
//===----------------------------------------------------------------------===//

void BM_ExhaustivenessCertify(benchmark::State &State) {
  Workspace WS;
  loadFamily(WS, static_cast<size_t>(State.range(0)));
  size_t Rules = 0;
  for (const Spec &S : WS.specs())
    Rules += S.axioms().size();
  for (auto _ : State) {
    ExhaustivenessReport Report = WS.exhaustiveness();
    benchmark::DoNotOptimize(Report.Overall);
  }
  State.counters["axioms"] = static_cast<double>(Rules);
}

} // namespace

BENCHMARK(BM_CompletenessGroundSweep)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompletenessCertified)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustivenessCertify)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

ALGSPEC_BENCHMARK_MAIN()
