//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E10 — the paper implements type Array as a chained hash
/// table (section 4's PL/I code) where a plain association list would
/// satisfy the same axioms. This bench shows where the hash pays off:
/// READ cost vs number of defined identifiers, hash vs linear, plus the
/// effect of the bucket count n the paper leaves as a parameter.
///
//===----------------------------------------------------------------------===//

#include "adt/HashArray.h"
#include "adt/LinearArray.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace algspec::adt;

namespace {

std::vector<std::string> identifiers(int64_t Count) {
  std::vector<std::string> Ids;
  Ids.reserve(static_cast<size_t>(Count));
  for (int64_t I = 0; I < Count; ++I)
    Ids.push_back("ident" + std::to_string(I));
  return Ids;
}

void BM_HashArrayRead(benchmark::State &State) {
  std::vector<std::string> Ids = identifiers(State.range(0));
  HashArray<int> A(static_cast<size_t>(State.range(1)));
  for (size_t I = 0; I != Ids.size(); ++I)
    A.assign(Ids[I], static_cast<int>(I));
  size_t Cursor = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.read(Ids[Cursor]));
    Cursor = (Cursor + 7) % Ids.size();
  }
}

void BM_LinearArrayRead(benchmark::State &State) {
  std::vector<std::string> Ids = identifiers(State.range(0));
  LinearArray<int> A;
  for (size_t I = 0; I != Ids.size(); ++I)
    A.assign(Ids[I], static_cast<int>(I));
  size_t Cursor = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.read(Ids[Cursor]));
    Cursor = (Cursor + 7) % Ids.size();
  }
}

void BM_HashArrayAssign(benchmark::State &State) {
  std::vector<std::string> Ids = identifiers(State.range(0));
  for (auto _ : State) {
    HashArray<int> A(64);
    for (size_t I = 0; I != Ids.size(); ++I)
      A.assign(Ids[I], static_cast<int>(I));
    benchmark::DoNotOptimize(A.entryCount());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

void BM_LinearArrayAssign(benchmark::State &State) {
  std::vector<std::string> Ids = identifiers(State.range(0));
  for (auto _ : State) {
    LinearArray<int> A;
    for (size_t I = 0; I != Ids.size(); ++I)
      A.assign(Ids[I], static_cast<int>(I));
    benchmark::DoNotOptimize(A.entryCount());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

} // namespace

// READ: {identifiers, buckets}. The linear array has no bucket knob.
BENCHMARK(BM_HashArrayRead)
    ->Args({4, 64})
    ->Args({32, 64})
    ->Args({256, 64})
    ->Args({2048, 64})
    ->Args({2048, 8})   // Under-provisioned buckets: chains grow.
    ->Args({2048, 512});
BENCHMARK(BM_LinearArrayRead)->Arg(4)->Arg(32)->Arg(256)->Arg(2048);

BENCHMARK(BM_HashArrayAssign)->Arg(256)->Arg(2048);
BENCHMARK(BM_LinearArrayAssign)->Arg(256)->Arg(2048);

ALGSPEC_BENCHMARK_MAIN()
