//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: define an abstract data type algebraically, check the
/// axiom set, and execute the specification directly.
///
/// This walks the paper's section-3 Queue end to end:
///   1. parse the spec,
///   2. check sufficient completeness and consistency,
///   3. run a program against the bare axioms (no implementation!),
///   4. watch a term normalize step by step.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"

#include <cstdio>

using namespace algspec;

int main() {
  // 1. A specification is ordinary text; Workspace parses it.
  Workspace WS;
  if (Result<void> R = WS.load(specs::QueueAlg, "queue.alg"); !R) {
    std::fprintf(stderr, "failed to load spec:\n%s\n",
                 R.error().message().c_str());
    return 1;
  }
  const Spec *Queue = WS.find("Queue");
  std::printf("Loaded spec '%s': %zu operations, %zu axioms.\n\n",
              Queue->name().c_str(), Queue->operations().size(),
              Queue->axioms().size());

  std::printf("The axioms (paper, section 3):\n");
  for (const Axiom &Ax : Queue->axioms())
    std::printf("  (%u) %s\n", Ax.Number,
                printAxiom(WS.context(), Ax).c_str());
  std::printf("\n");

  // 2. Is the axiom set sufficiently complete? Consistent?
  CompletenessReport Complete = WS.checkComplete(*Queue);
  std::printf("Sufficient completeness: %s\n",
              Complete.SufficientlyComplete ? "yes" : "NO");
  ConsistencyReport Consistent = WS.checkConsistent();
  std::printf("Consistency check:       %s\n\n",
              Consistent.Consistent ? "no contradictions found"
                                    : "CONTRADICTORY");

  // 3. Run a program against the specification alone (paper, section 5:
  //    "the lack of an implementation can be made completely
  //    transparent").
  auto SessionOrErr = WS.session();
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session S = SessionOrErr.take();
  const char *Program = "x := NEW\n"
                        "x := ADD(x, 'first)\n"
                        "x := ADD(x, 'second)\n"
                        "x := REMOVE(x)\n"
                        "x := ADD(x, 'third)\n";
  std::printf("Program:\n%s\n", Program);
  if (Result<void> R = S.runProgram(Program); !R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  std::printf("x            = %s\n",
              printTerm(WS.context(), S.lookup("x")).c_str());
  std::printf("FRONT(x)     = %s\n",
              printTerm(WS.context(), *S.eval("FRONT(x)")).c_str());
  std::printf("IS_EMPTY?(x) = %s\n\n",
              printTerm(WS.context(), *S.eval("IS_EMPTY?(x)")).c_str());

  // 4. Normalization trace: every rule application, with its axiom.
  EngineOptions Options;
  Options.KeepTrace = true;
  auto TracingOrErr = WS.session(Options);
  Session Tracing = TracingOrErr.take();
  Result<TermId> Term =
      parseTermText(WS.context(), "FRONT(REMOVE(ADD(ADD(NEW, 'a), 'b)))");
  std::printf("Normalizing %s:\n",
              printTerm(WS.context(), *Term).c_str());
  Result<TermId> Normal = Tracing.engine().normalize(*Term);
  for (const TraceStep &Step : Tracing.engine().trace())
    std::printf("  %-45s ~> %-30s  [axiom %u of %s]\n",
                printTerm(WS.context(), Step.Before).c_str(),
                printTerm(WS.context(), Step.After).c_str(),
                Step.AppliedRule->AxiomNumber,
                Step.AppliedRule->SpecName.c_str());
  std::printf("Normal form: %s\n", printTerm(WS.context(), *Normal).c_str());
  return 0;
}
