//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification-based testing (paper, section 5): a module implementor
/// is handed nothing but the algebraic definition; the tester replays the
/// axioms against the real code. A correct FIFO queue passes every
/// axiom; a queue with a LIFO bug in REMOVE is caught, with the precise
/// failing instance printed.
///
//===----------------------------------------------------------------------===//

#include "adt/Queue.h"
#include "core/AlgSpec.h"

#include <cstdio>
#include <string>

using namespace algspec;
using QueueV = adt::Queue<std::string>;

namespace {

/// Binds the real Queue<std::string> to the Queue spec. \p BuggyRemove
/// swaps in the broken variant.
void bindQueue(ModelBinding &B, AlgebraContext &Ctx, bool BuggyRemove) {
  B.bindOp("NEW",
           [](std::span<const Value>) { return Value::of(QueueV()); });
  B.bindOp("ADD", [](std::span<const Value> Args) {
    QueueV Q = Args[0].get<QueueV>();
    Q.add(Args[1].get<std::string>());
    return Value::of(std::move(Q));
  });
  B.bindOp("FRONT", [](std::span<const Value> Args) {
    auto Front = Args[0].get<QueueV>().front();
    return Front ? Value::of(*Front) : Value::error();
  });
  B.bindOp("REMOVE", [BuggyRemove](std::span<const Value> Args) {
    QueueV Q = Args[0].get<QueueV>();
    if (Q.isEmpty())
      return Value::error();
    if (!BuggyRemove) {
      Q.remove();
      return Value::of(std::move(Q));
    }
    // The bug: drop the newest element instead of the oldest.
    QueueV Rebuilt;
    while (Q.size() > 1) {
      Rebuilt.add(*Q.front());
      Q.remove();
    }
    return Value::of(std::move(Rebuilt));
  });
  B.bindOp("IS_EMPTY?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<QueueV>().isEmpty());
  });
  B.bindEquals(Ctx.lookupSort("Queue"),
               [](const Value &A, const Value &B2) {
                 return A.get<QueueV>() == B2.get<QueueV>();
               });
}

} // namespace

int main() {
  Workspace WS;
  if (Result<void> R = WS.load(specs::QueueAlg, "queue.alg"); !R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  const Spec *Queue = WS.find("Queue");

  ModelTestOptions Options;
  Options.MaxDepth = 5;

  std::printf("==== testing the correct FIFO implementation ====\n");
  {
    ModelBinding B(WS.context());
    bindQueue(B, WS.context(), /*BuggyRemove=*/false);
    ModelTestReport Report = testModel(WS.context(), *Queue, B, Options);
    std::printf("%s", Report.render().c_str());
    if (!Report.AllPassed) {
      std::fprintf(stderr, "unexpected failure in the correct queue\n");
      return 1;
    }
  }

  std::printf("\n==== testing the buggy (LIFO-removing) implementation "
              "====\n");
  {
    ModelBinding B(WS.context());
    bindQueue(B, WS.context(), /*BuggyRemove=*/true);
    ModelTestReport Report = testModel(WS.context(), *Queue, B, Options);
    std::printf("%s", Report.render().c_str());
    if (Report.AllPassed) {
      std::fprintf(stderr, "the axioms should have caught the bug\n");
      return 1;
    }
  }

  std::printf("\nThe axioms are the test oracle: the implementor never "
              "needed a hand-written expected output.\n");
  return 0;
}
