//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification-based testing (paper, section 5): a module implementor
/// is handed nothing but the algebraic definition; the tester replays the
/// axioms against the real code. A correct FIFO queue passes every
/// axiom; a queue with a LIFO bug in REMOVE is caught, with the precise
/// failing instance printed.
///
/// The Queue binding itself lives in the shared registry
/// (src/adt/Bindings.cpp) — the same wiring the Model tests and the
/// `algspec testgen` campaigns use — and the LIFO bug is its registered
/// "remove-lifo" mutant.
///
//===----------------------------------------------------------------------===//

#include "adt/Bindings.h"
#include "core/AlgSpec.h"

#include <cstdio>
#include <string>

using namespace algspec;

int main() {
  Workspace WS;
  if (Result<void> R = WS.load(specs::QueueAlg, "queue.alg"); !R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  const Spec *Queue = WS.find("Queue");
  const adt::AdtBinding *Row = adt::findAdtBinding("Queue");
  if (!Queue || !Row) {
    std::fprintf(stderr, "Queue spec or binding registry row missing\n");
    return 1;
  }

  ModelTestOptions Options;
  Options.MaxDepth = 5;

  std::printf("==== testing the correct FIFO implementation ====\n");
  {
    ModelBinding B(WS.context());
    if (Result<void> R = Row->Install(B, *Queue, ""); !R) {
      std::fprintf(stderr, "%s\n", R.error().message().c_str());
      return 1;
    }
    ModelTestReport Report = testModel(WS.context(), *Queue, B, Options);
    std::printf("%s", Report.render().c_str());
    if (!Report.AllPassed) {
      std::fprintf(stderr, "unexpected failure in the correct queue\n");
      return 1;
    }
  }

  std::printf("\n==== testing the buggy (LIFO-removing) implementation "
              "====\n");
  {
    ModelBinding B(WS.context());
    if (Result<void> R = Row->Install(B, *Queue, "remove-lifo"); !R) {
      std::fprintf(stderr, "%s\n", R.error().message().c_str());
      return 1;
    }
    ModelTestReport Report = testModel(WS.context(), *Queue, B, Options);
    std::printf("%s", Report.render().c_str());
    if (Report.AllPassed) {
      std::fprintf(stderr, "the axioms should have caught the bug\n");
      return 1;
    }
  }

  std::printf("\nThe axioms are the test oracle: the implementor never "
              "needed a hand-written expected output.\n");
  return 0;
}
