//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running application: the symbol-table subsystem of a
/// compiler for a block-structured language.
///
/// One scope/type checker runs over four interchangeable symbol-table
/// backends — three concrete representations and the bare specification
/// interpreted symbolically — and produces identical diagnostics from
/// each, demonstrating representation independence end to end.
///
//===----------------------------------------------------------------------===//

#include "adt/FlatSymbolTable.h"
#include "adt/ListSymbolTable.h"
#include "adt/SymbolTable.h"
#include "blocklang/ScopedTable.h"
#include "blocklang/Sema.h"
#include "support/SourceMgr.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace algspec;
using namespace algspec::blocklang;

namespace {

const char *GoodProgram = R"(
begin
  var count : int;
  var done  : bool;
  count := 0;
  while count < 10 do
    count := count + 1;
  end;
  done := count == 10;
  if done then
    begin
      var count : bool;   // shadows the outer int count
      count := done;
    end;
  else
    count := 0;
  end;
  count := count + 1;     // the outer count again
end
)";

const char *BadProgram = R"(
begin
  var x : int;
  var x : bool;          // duplicate declaration
  begin
    var t : int;
    t := 1;
  end;
  t := 2;                // t's block is gone
  x := true;             // type error
  y := 0;                // undeclared
end
)";

void runWith(const char *Name, ScopedTable &Table, const char *Source) {
  SourceMgr SM("program.bl", Source);
  DiagnosticEngine Diags;
  SemaStats Stats;
  bool Ok = compile(SM, Table, Diags, Dialect::Plain, &Stats);
  std::printf("--- backend: %-28s %s\n", Name,
              Ok ? "accepted" : "rejected");
  std::printf("    (%llu declarations, %llu lookups, %llu nested blocks)\n",
              static_cast<unsigned long long>(Stats.Declarations),
              static_cast<unsigned long long>(Stats.Lookups),
              static_cast<unsigned long long>(Stats.BlocksEntered));
  if (!Ok)
    std::printf("%s", Diags.render(&SM).c_str());
}

void runAllBackends(const char *Source, const char *Label) {
  std::printf("==== %s ====\n%s\n", Label, Source);

  ConcreteScopedTable<adt::SymbolTable<Type>> Hash;
  runWith("stack of hash arrays", Hash, Source);

  ConcreteScopedTable<adt::ListSymbolTable<Type>> List;
  runWith("association list", List, Source);

  ConcreteScopedTable<adt::FlatSymbolTable<Type>> Flat;
  runWith("flat table + undo log", Flat, Source);

  auto SpecOrErr = SpecScopedTable::create();
  if (!SpecOrErr) {
    std::fprintf(stderr, "spec backend failed to initialize: %s\n",
                 SpecOrErr.error().message().c_str());
    return;
  }
  runWith("Symboltable SPEC (no impl!)", **SpecOrErr, Source);
  std::printf("    spec backend did %llu rewrite steps to answer those "
              "queries\n\n",
              static_cast<unsigned long long>((*SpecOrErr)->stats().Steps));
}

} // namespace

int main() {
  std::printf("BlockLang compiler front end over interchangeable "
              "symbol-table backends\n"
              "(Guttag 1977, section 4: the symbol table of a compiler "
              "for a block-structured language)\n\n");
  runAllBackends(GoodProgram, "a well-formed program");
  runAllBackends(BadProgram, "a program with scope and type errors");
  return 0;
}
