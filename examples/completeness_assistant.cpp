//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section-3 scenario, replayed mechanically: a user writes a
/// Queue axiomatization but forgets the boundary conditions ("Boundary
/// conditions, e.g. REMOVE(NEW), are particularly likely to be
/// overlooked"). The completeness checker prompts with exactly the
/// missing left-hand sides; the user supplies them; the checker then
/// certifies the spec and the consistency checker finds no
/// contradictions.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"

#include <cstdio>

using namespace algspec;

namespace {

const char *FirstDraft = R"(
spec Queue
  uses Item
  sorts Queue
  ops
    NEW       : -> Queue
    ADD       : Queue, Item -> Queue
    FRONT     : Queue -> Item
    REMOVE    : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW, ADD
  vars
    q : Queue
    i : Item
  axioms
    IS_EMPTY?(NEW) = true
    IS_EMPTY?(ADD(q, i)) = false
    FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
    REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
)";

const char *SecondDraft = R"(
spec Queue
  uses Item
  sorts Queue
  ops
    NEW       : -> Queue
    ADD       : Queue, Item -> Queue
    FRONT     : Queue -> Item
    REMOVE    : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW, ADD
  vars
    q : Queue
    i : Item
  axioms
    IS_EMPTY?(NEW) = true
    IS_EMPTY?(ADD(q, i)) = false
    FRONT(NEW) = error                -- supplied after the prompt
    FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
    REMOVE(NEW) = error               -- supplied after the prompt
    REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
)";

int checkDraft(const char *Title, const char *Text) {
  std::printf("==== %s ====\n", Title);
  Workspace WS;
  if (Result<void> R = WS.load(Text, "queue.alg"); !R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  const Spec *Queue = WS.find("Queue");

  // Static pattern-coverage analysis with paper-style prompting.
  CompletenessReport Static = WS.checkComplete(*Queue);
  std::printf("[static analysis]\n%s",
              Static.renderPrompt(WS.context()).c_str());

  // Dynamic confirmation: normalize every small ground application.
  CompletenessReport Dynamic = checkCompletenessDynamic(
      WS.context(), *Queue, WS.specPointers(), /*MaxDepth=*/3);
  std::printf("[dynamic check to depth 3] %zu stuck term(s)\n",
              Dynamic.Missing.size());
  for (size_t I = 0; I < Dynamic.Missing.size() && I < 4; ++I)
    std::printf("  stuck: %s\n",
                printTerm(WS.context(), Dynamic.Missing[I].SuggestedLhs)
                    .c_str());
  if (Dynamic.Missing.size() > 4)
    std::printf("  ... and %zu more\n", Dynamic.Missing.size() - 4);

  ConsistencyReport Consistent = WS.checkConsistent();
  std::printf("[consistency] %s\n",
              Consistent.render(WS.context()).c_str());
  return Static.SufficientlyComplete && Dynamic.SufficientlyComplete ? 0
                                                                     : 2;
}

} // namespace

int main() {
  int First = checkDraft("first draft (boundary conditions forgotten)",
                         FirstDraft);
  if (First == 1)
    return 1;
  std::printf("\nThe user supplies the prompted axioms and resubmits.\n\n");
  int Second =
      checkDraft("second draft (prompted axioms supplied)", SecondDraft);
  if (Second != 0) {
    std::fprintf(stderr, "unexpected: the completed draft should pass\n");
    return 1;
  }
  std::printf("The axiom set is now sufficiently complete: every "
              "operation has a meaning on every value.\n");
  return 0;
}
