//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section-4 correctness proof, mechanized: verify that the
/// Stack-of-Arrays implementation of Symboltable satisfies axioms 1-9.
///
/// Three runs reproduce the paper's discussion of Assumption 1:
///   1. over implementation-reachable values — all axioms hold
///      (conditional correctness);
///   2. over all representation values — axiom 9's proof obligation
///      fails on an empty stack, the exact case Assumption 1 excludes;
///   3. over values satisfying the representation invariant — all hold.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"

#include <cstdio>

using namespace algspec;

int main() {
  AlgebraContext Ctx;
  auto Abstract = specs::loadSymboltable(Ctx);
  auto Concrete = specs::loadStackArray(Ctx);
  if (!Abstract || !Concrete) {
    std::fprintf(stderr, "failed to load builtin specs\n");
    return 1;
  }
  auto Rep = buildSymboltableRep(Ctx);
  if (!Rep) {
    std::fprintf(stderr, "%s\n", Rep.error().message().c_str());
    return 1;
  }

  std::vector<const Spec *> Sources{&*Abstract};
  for (const Spec &S : *Concrete)
    Sources.push_back(&S);
  for (const Spec &S : Rep->ImplSpecs)
    Sources.push_back(&S);

  auto report = [&](const char *Title, const VerifyOptions &Options) {
    std::printf("==== %s ====\n", Title);
    VerifyReport Report =
        verifyRepresentation(Ctx, *Abstract, Sources, Rep->Mapping, Options);
    std::printf("%s\n", Report.render(Ctx).c_str());
    return Report.AllHold;
  };

  VerifyOptions Reachable;
  Reachable.Domain = ValueDomain::Reachable;
  Reachable.Depth = 4;
  bool R1 = report("1. generator induction over reachable values "
                   "(the paper's conditional correctness)",
                   Reachable);

  VerifyOptions Free;
  Free.Domain = ValueDomain::FreeTerms;
  Free.Depth = 3;
  bool R2 = report("2. all representation values, no assumption "
                   "(axiom 9 must fail: ADD' onto an empty stack)",
                   Free);

  VerifyOptions Guarded = Free;
  Guarded.Invariant = Ctx.lookupOp("VALID_REP?");
  bool R3 = report("3. all values satisfying the representation "
                   "invariant (Assumption 1 as a VALID_REP? filter)",
                   Guarded);

  std::printf("==== 4. the homomorphism conditions (pinning the "
              "interpretation function itself) ====\n");
  VerifyReport Hom =
      verifyHomomorphism(Ctx, *Abstract, Sources, Rep->Mapping, Reachable);
  std::printf("%s\n", Hom.render(Ctx).c_str());
  bool R4 = Hom.AllHold;

  if (!R1 || R2 || !R3 || !R4) {
    std::fprintf(stderr, "unexpected verification outcome\n");
    return 1;
  }
  std::printf("Exactly the paper's story: correct conditionally, and the "
              "condition is Assumption 1.\n");
  return 0;
}
