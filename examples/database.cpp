//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing conjecture, made executable (section 5):
///
///   "A database management system, for example, might be completely
///   characterized by an algebraic specification of the various
///   operations available to users."
///
/// This example characterizes a keyed table that way and then exercises
/// the characterization three ways:
///   1. check the axiom set (complete + consistent);
///   2. run database queries against the bare specification;
///   3. model-test the real Table<V> implementation against the axioms.
///
//===----------------------------------------------------------------------===//

#include "adt/Table.h"
#include "core/AlgSpec.h"

#include <cstdio>
#include <string>

using namespace algspec;
using TableImpl = adt::Table<std::string>;

int main() {
  Workspace WS;
  if (Result<void> R = WS.load(specs::TableAlg, "table.alg"); !R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  const Spec *Table = WS.find("Table");
  std::printf("The DBMS characterization: %zu operations, %zu axioms.\n",
              Table->operations().size(), Table->axioms().size());

  CompletenessReport Complete = WS.checkComplete(*Table);
  ConsistencyReport Consistent = WS.checkConsistent();
  std::printf("sufficiently complete: %s; consistent: %s\n\n",
              Complete.SufficientlyComplete ? "yes" : "NO",
              Consistent.Consistent ? "yes" : "NO");

  // 2. Queries against the specification alone.
  auto SessionOrErr = WS.session();
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session S = SessionOrErr.take();
  Result<void> R = S.runProgram(R"(
    db := EMPTY_TABLE
    db := INSERT_ROW(db, 'alice, 'admin)
    db := INSERT_ROW(db, 'bob, 'user)
    db := INSERT_ROW(db, 'carol, 'admin)
    db := INSERT_ROW(db, 'bob, 'admin)   -- bob gets promoted
    admins := SELECT_VAL(db, 'admin)
  )");
  if (!R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  auto show = [&](const char *Query) {
    Result<TermId> V = S.eval(Query);
    std::printf("  %-28s = %s\n", Query,
                V ? printTerm(WS.context(), *V).c_str()
                  : V.error().message().c_str());
  };
  std::printf("Queries answered by rewriting the axioms:\n");
  show("LOOKUP(db, 'bob)");
  show("ROW_COUNT(db)");
  show("ROW_COUNT(admins)");
  show("HAS_ROW?(admins, 'alice)");
  show("LOOKUP(db, 'mallory)");

  // 3. The real implementation against the same axioms.
  ModelBinding B(WS.context());
  B.bindOp("EMPTY_TABLE",
           [](std::span<const Value>) { return Value::of(TableImpl()); });
  B.bindOp("INSERT_ROW", [](std::span<const Value> Args) {
    TableImpl T = Args[0].get<TableImpl>();
    T.insertRow(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("DELETE_ROW", [](std::span<const Value> Args) {
    TableImpl T = Args[0].get<TableImpl>();
    T.deleteRow(Args[1].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("LOOKUP", [](std::span<const Value> Args) {
    auto V = Args[0].get<TableImpl>().lookup(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindOp("HAS_ROW?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<TableImpl>().hasRow(Args[1].get<std::string>()));
  });
  B.bindOp("ROW_COUNT", [](std::span<const Value> Args) {
    return Value::of(
        static_cast<int64_t>(Args[0].get<TableImpl>().rowCount()));
  });
  B.bindOp("SELECT_VAL", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<TableImpl>().selectVal(Args[1].get<std::string>()));
  });
  B.bindEquals(WS.context().lookupSort("Table"),
               [](const Value &A, const Value &B2) {
                 return A.get<TableImpl>() == B2.get<TableImpl>();
               });

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(WS.context(), *Table, B, Options);
  std::printf("\nModel-testing the real Table<V> against the axioms:\n%s",
              Report.render().c_str());
  if (!Report.AllPassed || !Complete.SufficientlyComplete ||
      !Consistent.Consistent) {
    std::fprintf(stderr, "unexpected failure\n");
    return 1;
  }
  std::printf("\nThe specification IS the system's definition — the "
              "implementation merely has to live up to it.\n");
  return 0;
}
