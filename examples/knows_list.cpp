//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's language-change scenario (end of section 4): the compiled
/// language now requires a "knows list" at block entry, and a block
/// inherits only the listed nonlocal identifiers.
///
/// This example shows the whole adaptation:
///   1. the adapted specification — exactly the ENTERBLOCK axioms differ;
///   2. the adapted axioms re-check as sufficiently complete and
///      consistent;
///   3. the extended compiler front end enforces knows-lists;
///   4. the spec itself answers visibility queries symbolically.
///
//===----------------------------------------------------------------------===//

#include "blocklang/ScopedTable.h"
#include "blocklang/Sema.h"
#include "core/AlgSpec.h"
#include "support/SourceMgr.h"

#include <cstdio>

using namespace algspec;
using namespace algspec::blocklang;

int main() {
  // 1-2. Load the adapted spec and re-run the checks.
  Workspace WS;
  if (Result<void> R =
          WS.load(specs::KnowsSymboltableAlg, "knows_symboltable.alg");
      !R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  std::printf("Adapted specification loaded: specs");
  for (const Spec &S : WS.specs())
    std::printf(" '%s'", S.name().c_str());
  std::printf(".\n");
  std::printf("Relative to the plain Symboltable, the changed axioms are "
              "precisely those mentioning ENTERBLOCK:\n");
  const Spec *Table = WS.find("Symboltable");
  for (const Axiom &Ax : Table->axioms()) {
    std::string Text = printAxiom(WS.context(), Ax);
    if (Text.find("ENTERBLOCK") != std::string::npos)
      std::printf("  (%u) %s\n", Ax.Number, Text.c_str());
  }

  for (const Spec &S : WS.specs()) {
    CompletenessReport Report = WS.checkComplete(S);
    std::printf("'%s' sufficiently complete: %s\n", S.name().c_str(),
                Report.SufficientlyComplete ? "yes" : "NO");
  }
  ConsistencyReport Consistency = WS.checkConsistent();
  std::printf("consistency: %s\n",
              Consistency.Consistent ? "no contradictions found"
                                     : "CONTRADICTORY");

  // 3. The extended front end.
  const char *Program = R"(
begin
  var g : int;
  var h : int;
  begin knows g;
    var l : int;
    l := g;      // fine: g is known
    l := h;      // error: h is not in the knows-list
  end;
end
)";
  std::printf("\nCompiling (knows dialect):\n%s\n", Program);
  SourceMgr SM("program.bl", Program);
  DiagnosticEngine Diags;
  KnowsScopedTable Backend;
  bool Ok = compile(SM, Backend, Diags, Dialect::Knows);
  std::printf("%s%s\n", Diags.render(&SM).c_str(),
              Ok ? "accepted" : "rejected (as it should be)");

  // 4. The same question answered by the axioms alone.
  auto SessionOrErr = WS.session();
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session S = SessionOrErr.take();
  Result<void> R = S.runProgram(R"(
    t := ADD(ADD(INIT, 'g, 'int), 'h, 'int)
    t := ENTERBLOCK(t, APPEND(CREATE, 'g))
  )");
  if (!R) {
    std::fprintf(stderr, "%s\n", R.error().message().c_str());
    return 1;
  }
  std::printf("\nSymbolic interpretation of the adapted spec:\n");
  std::printf("  RETRIEVE(t, 'g) = %s\n",
              printTerm(WS.context(), *S.eval("RETRIEVE(t, 'g)")).c_str());
  std::printf("  RETRIEVE(t, 'h) = %s   (h was not in the knows-list)\n",
              printTerm(WS.context(), *S.eval("RETRIEVE(t, 'h)")).c_str());
  return Ok ? 1 : 0; // The program is expected to be rejected.
}
